#ifndef MUSE_CEP_EVALUATOR_H_
#define MUSE_CEP_EVALUATOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/cep/batch.h"
#include "src/cep/match.h"
#include "src/cep/query.h"

namespace muse {

/// Tuning knobs and runtime guards for a `ProjectionEvaluator`.
struct EvaluatorOptions {
  /// Extra slack (ms) added to the window when evicting buffered matches.
  /// Needed when inputs from different parts arrive with skew (e.g. network
  /// delay in the distributed runtime): a match is evicted only once no
  /// in-flight input could still join with it. Callers must set this to at
  /// least the maximum cross-part arrival skew.
  ///
  /// The same contract bounds NSEQ candidate release: once the watermark
  /// has passed a candidate's max time by this slack, no anti match that
  /// could still invalidate it is in flight (an invalidating anti lies
  /// between the candidate's spans in the trace, so its own span ends at
  /// or before the candidate's), and the candidate is emitted eagerly.
  uint64_t eviction_slack_ms = 0;

  /// Hard cap on emitted matches; 0 means unlimited. Guards tests and
  /// benches against the exponential blow-up inherent to
  /// skip-till-any-match [26].
  uint64_t max_matches = 0;
};

/// Load/progress counters; `peak_buffered` is the proxy for the number of
/// maintained partial matches, which dominates per-node latency and
/// throughput (§7.1, [26]).
struct EvaluatorStats {
  uint64_t inputs = 0;
  uint64_t candidates_checked = 0;
  uint64_t matches_emitted = 0;
  uint64_t buffered = 0;
  uint64_t peak_buffered = 0;
  /// Buffered matches dropped because the watermark passed their window +
  /// slack horizon.
  uint64_t evictions = 0;
  /// NSEQ candidates currently held / the peak ever held — bounded by the
  /// window horizon, not the stream length, thanks to watermark release.
  uint64_t pending = 0;
  uint64_t peak_pending = 0;
  /// NSEQ candidates emitted eagerly by watermark release (before Flush).
  uint64_t pending_released = 0;
  /// NSEQ candidates pruned from pending by a later-arriving anti match.
  uint64_t pending_invalidated = 0;
  /// Columnar ingestion (muse-batch): batches fed through OnEventBatch,
  /// their total row count, rows dropped by the predicate kernels before
  /// ever reaching a buffer, and batches taken on the order-insensitive
  /// bulk path (vs. the row-ordered fallback when the batch spans more
  /// than the eviction slack).
  uint64_t batches = 0;
  uint64_t batch_rows = 0;
  uint64_t batch_rows_filtered = 0;
  uint64_t batch_bulk = 0;
};

/// Evaluates one query projection from streams of matches of its
/// combination's predecessor projections (§5.1).
///
/// This realizes the paper's per-node automata (§7.1): the inputs of the
/// evaluator are matches of arbitrary sub-projections which may arrive in
/// arbitrary relative order; ordering constraints of the target pattern are
/// checked as guards when candidate matches are assembled (skip-till-any-
/// match policy, §2.2).
///
/// Parts and polarity:
///  * *positive* parts jointly cover the target's positive primitive types;
///    overlapping parts are allowed — overlapping types must then agree on
///    the shared event for a candidate to form (§5.1);
///  * for every NSEQ in the target, exactly one *anti* part must supply the
///    matches of the negated middle child; candidates invalidated by an
///    anti match lying between the first and last child's spans are
///    suppressed (§2.2). Because anti matches may arrive after a candidate
///    was assembled, candidates of NSEQ targets are held back — but only
///    until the watermark passes the last instant an invalidating anti
///    could still arrive (candidate max time + eviction slack), at which
///    point they are emitted *eagerly*; `Flush()` only drains the
///    window-bounded remainder.
///
/// A plain event stream is fed as singleton matches of a primitive part.
class ProjectionEvaluator {
 public:
  /// `target` is the projection to evaluate; `parts` its input projections.
  /// Positive parts must jointly cover target.PositiveTypes(); each anti
  /// part must exactly match one NSEQ middle child's type set.
  ProjectionEvaluator(Query target, std::vector<Query> parts,
                      EvaluatorOptions options = {});

  int num_parts() const { return static_cast<int>(parts_.size()); }
  const Query& part(int i) const { return parts_[i]; }
  const Query& target() const { return target_; }
  bool part_is_anti(int i) const { return part_anti_[i]; }

  /// Feeds one match of part `part_idx`; newly completed matches of the
  /// target are appended to `out`. For NSEQ targets, candidates surface
  /// once the watermark clears them (or on `Flush` for the tail).
  void OnMatch(int part_idx, const Match& m, std::vector<Match>* out);

  /// Convenience for primitive parts: wraps the event in a singleton match.
  void OnEvent(int part_idx, const Event& e, std::vector<Match>* out) {
    OnMatch(part_idx, Match::Single(e), out);
  }

  /// Columnar ingestion of a whole batch of raw events (muse-batch).
  /// `part_of_type[t]` names the positive primitive part receiving events
  /// of type t, or -1 for types the evaluator ignores; every part so named
  /// must be a singleton primitive projection. Rows must be in global-trace
  /// order (`seq` ascending).
  ///
  /// Rows are first routed and compacted by the flat predicate kernels:
  /// a row failing a unary filter of its part can never survive the
  /// `StructurallyMatches` gate, so dropping it before insertion preserves
  /// the match set while shrinking buffers and join work by the filter
  /// selectivity. The surviving candidate index vectors then feed the join:
  ///  * if the batch's time span fits inside `eviction_slack_ms`, parts are
  ///    ingested column-at-a-time (order-insensitive: no eviction cutoff or
  ///    pending release can fire inside the batch, and each cross-part pair
  ///    is still formed exactly once by its later-ingested side);
  ///  * otherwise rows replay in trace order, still skipping filtered rows.
  /// Either way the emitted multiset equals the scalar path's; only the
  /// emission order within the batch may differ.
  void OnEventBatch(const EventBatch& batch, const int* part_of_type,
                    size_t num_types, std::vector<Match>* out);

  /// Emits the NSEQ candidates still pending (those the watermark has not
  /// cleared yet). Idempotent: candidates already released by the
  /// watermark — or by a previous Flush — are never re-emitted, and the
  /// `max_matches` cap spans both paths.
  void Flush(std::vector<Match>* out);

  const EvaluatorStats& stats() const { return stats_; }

 private:
  /// One key's matches, ordered by cached MaxTime (ties in arrival order):
  /// inserts are amortized appends under a mostly-advancing watermark, the
  /// window check in JoinRecursive becomes a binary-searched range scan,
  /// and eviction pops from the front. The pop is a head index, not an
  /// erase — the dead prefix is physically compacted only once it reaches
  /// half the vector, so each element is moved O(1) amortized times and
  /// frequent eviction sweeps never memmove the live suffix.
  struct KeyBuffer {
    std::vector<Match> matches;
    size_t head = 0;  // matches[0, head) are evicted

    size_t live() const { return matches.size() - head; }
    const Match* begin() const { return matches.data() + head; }
    const Match* end() const { return matches.data() + matches.size(); }
  };

  /// Per-part buffer of live matches, optionally hash-partitioned by the
  /// value of the join attribute (see `join_attr_`).
  struct Buffer {
    std::unordered_map<int64_t, KeyBuffer> by_key;
    uint64_t size = 0;
  };

  /// An NSEQ candidate awaiting clearance. `release_at` is the last
  /// watermark value at which an invalidating anti match could still
  /// arrive: the candidate's max time plus the eviction slack.
  struct PendingCandidate {
    Match match;
    uint64_t release_at;
  };

  int64_t KeyOf(const Match& m) const;
  bool SharesJoinKey(const Match& m) const;
  void Insert(int part_idx, const Match& m);
  void EvictExpired();
  void ReleasePending(std::vector<Match>* out);
  void JoinFrom(int arrival_part, const Match& m, std::vector<Match>* out);
  void JoinRecursive(const std::vector<int>& order, size_t depth,
                     const Match& partial, int64_t key,
                     std::vector<Match>* out);
  void EmitCandidate(const Match& candidate, std::vector<Match>* out);
  bool InvalidatedByAnti(const Match& candidate) const;

  Query target_;
  std::vector<Query> parts_;
  std::vector<bool> part_anti_;
  std::vector<int> positive_parts_;
  std::vector<int> anti_parts_;
  EvaluatorOptions options_;

  /// If >= 0, all equality predicates of the target chain this attribute
  /// across every positive type; buffers are hash-partitioned on it and
  /// part matches not constant on it are dropped on insertion (they can
  /// never complete a candidate).
  int join_attr_ = -1;

  /// For each NSEQ in the target: (positive types of first child, positive
  /// types of last child, anti part index).
  struct NseqInfo {
    TypeSet before;
    TypeSet after;
    int anti_part;
  };
  std::vector<NseqInfo> nseqs_;

  std::vector<Buffer> buffers_;
  /// NSEQ candidates awaiting watermark clearance, ordered by `release_at`
  /// (ties in formation order); released from the front as the watermark
  /// advances, so its size is bounded by the window + slack horizon.
  std::deque<PendingCandidate> pending_;
  uint64_t watermark_time_ = 0;
  /// Eviction triggers: an insert-count fallback plus a watermark
  /// threshold, so buffers of parts that went quiet are still freed while
  /// the watermark advances through other parts.
  uint64_t inserts_since_eviction_ = 0;
  uint64_t next_eviction_watermark_ = 0;
  /// Scratch for OnEventBatch, reused across batches: per-part candidate
  /// row indices after kernel pre-filtering, and the row -> part scatter
  /// used by the ordered fallback.
  std::vector<std::vector<uint32_t>> batch_rows_;
  std::vector<int> batch_part_of_row_;
  EvaluatorStats stats_;
};

}  // namespace muse

#endif  // MUSE_CEP_EVALUATOR_H_
