#include "src/cep/oracle.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {
namespace {

/// Match set of the operator subtree at `idx` over `trace`, per the
/// recursive definition of §2.2. Predicates and the window are applied at
/// the query level by the caller (predicates are independent and defined
/// over primitive operators, so the filtering order does not matter).
std::vector<Match> OpMatches(const Query& q, int idx,
                             const std::vector<Event>& trace) {
  const QueryOp& op = q.op(idx);
  switch (op.kind) {
    case OpKind::kPrimitive: {
      // Primitive matches are filtered by the applicable unary predicates
      // (§2.2: events "that satisfy P"). This matters for NSEQ middle
      // children, whose events never reach the query-level filter.
      std::vector<Match> out;
      for (const Event& e : trace) {
        if (e.type != op.type) continue;
        Match m = Match::Single(e);
        bool ok = true;
        for (const Predicate& p : q.predicates()) {
          if (p.Types() == TypeSet::Of(op.type) && !p.Eval(m.events)) {
            ok = false;
            break;
          }
        }
        if (ok) out.push_back(std::move(m));
      }
      return out;
    }
    case OpKind::kOr: {
      std::vector<Match> out;
      for (int child : op.children) {
        std::vector<Match> child_matches = OpMatches(q, child, trace);
        out.insert(out.end(), child_matches.begin(), child_matches.end());
      }
      return out;
    }
    case OpKind::kAnd: {
      // All interleavings of one match per child.
      std::vector<Match> acc = {Match{}};
      for (int child : op.children) {
        std::vector<Match> child_matches = OpMatches(q, child, trace);
        std::vector<Match> next;
        for (const Match& a : acc) {
          for (const Match& b : child_matches) {
            Match merged;
            if (a.empty()) {
              merged = b;
            } else if (!MergeIfConsistent(a, b, &merged)) {
              continue;
            }
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case OpKind::kSeq: {
      // Concatenations: each child's match strictly after the previous
      // child's match.
      std::vector<Match> acc = {Match{}};
      for (int child : op.children) {
        std::vector<Match> child_matches = OpMatches(q, child, trace);
        std::vector<Match> next;
        for (const Match& a : acc) {
          for (const Match& b : child_matches) {
            if (!a.empty() && b.FirstSeq() <= a.LastSeq()) continue;
            Match merged;
            if (a.empty()) {
              merged = b;
            } else if (!MergeIfConsistent(a, b, &merged)) {
              continue;
            }
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case OpKind::kNseq: {
      std::vector<Match> first = OpMatches(q, op.children[0], trace);
      std::vector<Match> negated = OpMatches(q, op.children[1], trace);
      std::vector<Match> last = OpMatches(q, op.children[2], trace);
      // Predicates fully inside the middle child's types filter the match
      // set M2 of the negated pattern.
      TypeSet mid_types = q.SubtreeTypes(op.children[1]);
      std::erase_if(negated, [&](const Match& m2) {
        for (const Predicate& p : q.predicates()) {
          if (p.Types().IsSubsetOf(mid_types) && p.Types().size() > 1 &&
              !p.Eval(m2.events)) {
            return true;
          }
        }
        return false;
      });
      std::vector<Match> out;
      for (const Match& m1 : first) {
        for (const Match& m3 : last) {
          if (m3.FirstSeq() <= m1.LastSeq()) continue;
          bool invalidated = false;
          for (const Match& m2 : negated) {
            if (m2.FirstSeq() > m1.LastSeq() && m2.LastSeq() < m3.FirstSeq()) {
              invalidated = true;
              break;
            }
          }
          if (invalidated) continue;
          Match merged;
          if (!MergeIfConsistent(m1, m3, &merged)) continue;
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
  }
  MUSE_CHECK(false, "unreachable");
  return {};
}

}  // namespace

std::vector<Match> OracleMatches(const Query& q,
                                 const std::vector<Event>& trace) {
  std::vector<Match> raw = OpMatches(q, q.root(), trace);
  std::vector<Match> out;
  for (Match& m : raw) {
    bool ok = true;
    for (const Predicate& p : q.predicates()) {
      if (!p.Eval(m.events)) {
        ok = false;
        break;
      }
    }
    if (ok && q.window() != kNoWindow &&
        m.MaxTime() - m.MinTime() > q.window()) {
      ok = false;
    }
    if (ok) out.push_back(std::move(m));
  }
  return CanonicalMatchSet(std::move(out));
}

std::vector<Match> CanonicalMatchSet(std::vector<Match> matches) {
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.Key() < b.Key(); });
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  return matches;
}

}  // namespace muse
