#ifndef MUSE_CEP_PREDICATE_H_
#define MUSE_CEP_PREDICATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cep/event.h"
#include "src/common/typeset.h"

namespace muse {

/// Euclidean modulo: the remainder of `value / modulus` normalized into
/// `[0, modulus)`. C++'s `%` truncates toward zero, so `-3 % 2 == -1` and a
/// filter `attr % m == 0` written with raw `%` rejects almost every negative
/// attribute — breaking the modeled 1/m selectivity on signed payloads. All
/// predicate evaluation (scalar Eval, the oracle, and the columnar batch
/// kernels) must use this one definition. `modulus` must be >= 1.
inline int64_t EuclidMod(int64_t value, int64_t modulus) {
  int64_t r = value % modulus;
  return r < 0 ? r + modulus : r;
}

/// Boolean predicate over the payload of the events bound to at most two
/// primitive operators (§2.2). Following the paper, complex predicates are
/// split so that each predicate references at most two primitive operators
/// and predicates are independent of each other.
///
/// Two concrete forms are supported:
///  * `kEquality`:  left.attrs[left_attr] == right.attrs[right_attr]
///    (the form used by the cluster-monitoring queries, e.g. f.uID = e.uID);
///  * `kFilter`:    left.attrs[left_attr] % modulus == 0
///    (a unary filter with selectivity 1/modulus).
///
/// Each predicate also carries its modeled `selectivity` σ(a): the ratio of
/// event (pairs) satisfying it, used by the cost model. For synthetic
/// workloads the selectivity is drawn by the workload generator; for real
/// predicates it should be estimated from data.
struct Predicate {
  enum class Kind { kEquality, kFilter };

  Kind kind = Kind::kEquality;
  EventTypeId left_type = 0;
  int left_attr = 0;
  EventTypeId right_type = 0;  // kEquality only
  int right_attr = 0;          // kEquality only
  int64_t modulus = 1;         // kFilter only
  double selectivity = 1.0;

  static Predicate Equality(EventTypeId left_type, int left_attr,
                            EventTypeId right_type, int right_attr,
                            double selectivity);
  static Predicate Filter(EventTypeId type, int attr, int64_t modulus);

  /// The event types this predicate references.
  TypeSet Types() const;

  /// True if the predicate can be checked given events of the types in
  /// `available` — i.e. all referenced types are present. A projection
  /// retains exactly the predicates applicable to its types (§4.2).
  bool ApplicableTo(TypeSet available) const;

  /// Evaluates the predicate over a candidate match. `events` must contain
  /// at most one event per type (queries do not repeat primitive types, §6).
  /// Returns true if the predicate holds or is not applicable (a referenced
  /// type is absent from `events`).
  bool Eval(const std::vector<Event>& events) const;

  std::string ToString() const;
};

/// Product of the selectivities of the predicates in `preds` that are
/// applicable to the type set `available` — σ(p) for a projection p (§4.2).
double CombinedSelectivity(const std::vector<Predicate>& preds,
                           TypeSet available);

}  // namespace muse

#endif  // MUSE_CEP_PREDICATE_H_
