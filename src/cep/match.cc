#include "src/cep/match.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

void Match::RecomputeSpan() {
  min_time = 0;
  max_time = 0;
  if (events.empty()) return;
  min_time = events.front().time;
  max_time = events.front().time;
  for (const Event& e : events) {
    min_time = std::min(min_time, e.time);
    max_time = std::max(max_time, e.time);
  }
}

Match Match::Restrict(TypeSet types) const {
  Match out;
  for (const Event& e : events) {
    if (types.Contains(e.type)) out.events.push_back(e);
  }
  out.RecomputeSpan();
  return out;
}

std::string Match::Key() const {
  std::string key;
  for (const Event& e : events) {
    key += std::to_string(e.seq);
    key += ",";
  }
  return key;
}

uint64_t Match::Fingerprint() const {
  // splitmix64 finalizer per seq, order-dependently combined; events are
  // seq-sorted, so the combination is canonical for the event set.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Event& e : events) {
    uint64_t x = e.seq + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  return h;
}

std::string Match::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += " ";
    out += events[i].ToString();
  }
  return out + "]";
}

bool operator==(const Match& a, const Match& b) {
  if (a.events.size() != b.events.size()) return false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].seq != b.events[i].seq) return false;
  }
  return true;
}

bool MergeIfConsistent(const Match& a, const Match& b, Match* out) {
  out->events.clear();
  out->events.reserve(a.events.size() + b.events.size());
  // The merged span is the union of the input spans; maintaining it here
  // keeps MinTime/MaxTime O(1) along the evaluator's join recursion.
  out->min_time = std::min(a.min_time, b.min_time);
  out->max_time = std::max(a.max_time, b.max_time);
  if (a.empty() || b.empty()) {
    out->min_time = a.empty() ? b.min_time : a.min_time;
    out->max_time = a.empty() ? b.max_time : a.max_time;
  }
  size_t i = 0;
  size_t j = 0;
  TypeSet seen;
  auto push = [&](const Event& e) {
    if (seen.Contains(e.type)) return false;  // two distinct events, one type
    seen.Insert(e.type);
    out->events.push_back(e);
    return true;
  };
  while (i < a.events.size() && j < b.events.size()) {
    if (a.events[i].seq == b.events[j].seq) {
      // Same event contributed by both sides; keep one copy.
      if (!push(a.events[i])) return false;
      ++i;
      ++j;
    } else if (a.events[i].seq < b.events[j].seq) {
      if (!push(a.events[i])) return false;
      ++i;
    } else {
      if (!push(b.events[j])) return false;
      ++j;
    }
  }
  for (; i < a.events.size(); ++i) {
    if (!push(a.events[i])) return false;
  }
  for (; j < b.events.size(); ++j) {
    if (!push(b.events[j])) return false;
  }
  return true;
}

namespace {

/// Span of the events of `m` whose types fall in `types`:
/// (min seq, max seq). Returns false if no such event exists.
bool SpanOf(const Match& m, TypeSet types, uint64_t* min_seq,
            uint64_t* max_seq) {
  bool found = false;
  for (const Event& e : m.events) {
    if (!types.Contains(e.type)) continue;
    if (!found) {
      *min_seq = e.seq;
      *max_seq = e.seq;
      found = true;
    } else {
      *min_seq = std::min(*min_seq, e.seq);
      *max_seq = std::max(*max_seq, e.seq);
    }
  }
  return found;
}

/// Recursively verifies the ordering constraints of the subtree at `idx`.
/// NSEQ middle subtrees are skipped (their absence condition is checked
/// against the negated child's match stream, not the candidate).
bool OrderingHolds(const Query& q, const Match& m, int idx) {
  const QueryOp& op = q.op(idx);
  switch (op.kind) {
    case OpKind::kPrimitive:
      return true;
    case OpKind::kAnd: {
      for (int child : op.children) {
        if (!OrderingHolds(q, m, child)) return false;
      }
      return true;
    }
    case OpKind::kSeq: {
      uint64_t prev_max = 0;
      bool have_prev = false;
      for (int child : op.children) {
        uint64_t lo = 0;
        uint64_t hi = 0;
        if (!SpanOf(m, q.SubtreeTypes(child), &lo, &hi)) return false;
        if (have_prev && lo <= prev_max) return false;
        prev_max = hi;
        have_prev = true;
        if (!OrderingHolds(q, m, child)) return false;
      }
      return true;
    }
    case OpKind::kNseq: {
      uint64_t lo1 = 0;
      uint64_t hi1 = 0;
      uint64_t lo3 = 0;
      uint64_t hi3 = 0;
      if (!SpanOf(m, q.SubtreeTypes(op.children[0]), &lo1, &hi1)) return false;
      if (!SpanOf(m, q.SubtreeTypes(op.children[2]), &lo3, &hi3)) return false;
      if (lo3 <= hi1) return false;
      return OrderingHolds(q, m, op.children[0]) &&
             OrderingHolds(q, m, op.children[2]);
    }
    case OpKind::kOr:
      // OR-free workloads only; evaluation goes through SplitDisjunctions.
      MUSE_CHECK(false, "OrderingHolds on OR operator");
  }
  return false;
}

}  // namespace

bool StructurallyMatches(const Query& q, const Match& m) {
  TypeSet positive = q.PositiveTypes();
  if (static_cast<int>(m.events.size()) != positive.size()) return false;
  TypeSet present;
  for (const Event& e : m.events) {
    if (present.Contains(e.type)) return false;  // duplicate type
    present.Insert(e.type);
  }
  if (present != positive) return false;
  if (!OrderingHolds(q, m, q.root())) return false;
  for (const Predicate& p : q.predicates()) {
    if (!p.Eval(m.events)) return false;
  }
  if (q.window() != kNoWindow && m.MaxTime() - m.MinTime() > q.window()) {
    return false;
  }
  return true;
}

bool AntiMatchInvalidates(const Match& m, TypeSet before_types,
                          TypeSet after_types, const Match& anti) {
  uint64_t before_lo = 0;
  uint64_t before_hi = 0;
  uint64_t after_lo = 0;
  uint64_t after_hi = 0;
  if (!SpanOf(m, before_types, &before_lo, &before_hi)) return false;
  if (!SpanOf(m, after_types, &after_lo, &after_hi)) return false;
  return anti.FirstSeq() > before_hi && anti.LastSeq() < after_lo;
}

}  // namespace muse
