#ifndef MUSE_CEP_PARSER_H_
#define MUSE_CEP_PARSER_H_

#include <string>

#include "src/cep/query.h"
#include "src/cep/type_registry.h"
#include "src/common/result.h"

namespace muse {

/// Parses query text into a `Query`, interning event type names in `reg`.
///
/// Two layers of syntax are accepted:
///
/// 1. Bare pattern expressions, as written throughout the paper:
///
///      SEQ(AND(C, L), F)
///      NSEQ(A, B, C)          // B is the negated middle child
///
/// 2. Full query specifications in a SASE-like notation (Listing 1):
///
///      PATTERN SEQ(Fail f, Evict e, Kill k, Update u)
///      WHERE f.a0 == e.a0 AND e.a0 == k.a0 AND k.a0 == u.a0
///      WITHIN 30min
///
///    Variables bind event types to names usable in WHERE. Attributes are
///    `a0`/`a1` (with aliases `uid` -> a0 and `jid` -> a1, matching the
///    cluster-monitoring queries). WITHIN accepts `ms`, `s`, `m`/`min`, `h`.
///
///    WHERE accepts two term forms, matching the two `Predicate` kinds:
///
///      f.a0 == e.a0         // kEquality (also accepts a single '=')
///      f.a0 % 16 == 0       // kFilter: Euclidean mod, selectivity 1/16
///
///    A term's left/right reference is resolved as a bound variable first,
///    falling back to the event type's own name, so filters are writable
///    without inventing a binding (`A WHERE A.a0 % 4 == 0`).
///
/// Equality predicates parsed from WHERE receive selectivity
/// `default_selectivity`; callers with better estimates can adjust the
/// returned query's predicates. Filter predicates carry their exact
/// modeled selectivity 1/modulus.
Result<Query> ParseQuery(const std::string& text, TypeRegistry* reg,
                         double default_selectivity = 0.1);

/// Parses a duration literal such as "30min", "5s", "100ms", "2h" into
/// milliseconds.
Result<uint64_t> ParseDuration(const std::string& text);

}  // namespace muse

#endif  // MUSE_CEP_PARSER_H_
