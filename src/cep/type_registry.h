#ifndef MUSE_CEP_TYPE_REGISTRY_H_
#define MUSE_CEP_TYPE_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/typeset.h"

namespace muse {

/// Interns event type names to dense `EventTypeId`s (the universe ℰ of
/// event types, §2.1). The registry is append-only; ids are stable.
///
/// The planner and engine operate on ids; the registry is only needed at the
/// edges (parsing queries, printing plans). At most 64 types can be
/// registered (the `TypeSet` width).
class TypeRegistry {
 public:
  /// The TypeSet width: ids above this cannot be represented.
  static constexpr int kMaxTypes = 64;

  TypeRegistry() = default;

  /// Returns the id of `name`, interning it if new. Asserts on overflow;
  /// code driven by untrusted input must check `Full()` (or `Find`) first.
  EventTypeId Intern(const std::string& name);

  /// True when no *new* name can be interned (existing names still can).
  bool Full() const { return size() >= kMaxTypes; }

  /// Returns the id of `name`, or -1 if unknown.
  int Find(const std::string& name) const;

  /// Name of an interned id.
  const std::string& Name(EventTypeId id) const;

  int size() const { return static_cast<int>(names_.size()); }

  /// Registers names "E0".."E{n-1}" (used by synthetic workloads).
  static TypeRegistry Synthetic(int num_types);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventTypeId> ids_;
};

}  // namespace muse

#endif  // MUSE_CEP_TYPE_REGISTRY_H_
