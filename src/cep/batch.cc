#include "src/cep/batch.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

void EventBatch::Clear() {
  type.clear();
  origin.clear();
  seq.clear();
  time.clear();
  for (auto& col : attrs) col.clear();
}

void EventBatch::Reserve(size_t n) {
  type.reserve(n);
  origin.reserve(n);
  seq.reserve(n);
  time.reserve(n);
  for (auto& col : attrs) col.reserve(n);
}

void EventBatch::Append(const Event& e) {
  type.push_back(e.type);
  origin.push_back(e.origin);
  seq.push_back(e.seq);
  time.push_back(e.time);
  for (int a = 0; a < kNumAttrs; ++a) attrs[a].push_back(e.attrs[a]);
}

Event EventBatch::At(size_t i) const {
  Event e;
  e.type = type[i];
  e.origin = origin[i];
  e.seq = seq[i];
  e.time = time[i];
  for (int a = 0; a < kNumAttrs; ++a) e.attrs[a] = attrs[a][i];
  return e;
}

uint64_t EventBatch::SpanMs() const {
  if (time.empty()) return 0;
  uint64_t lo = time[0];
  uint64_t hi = time[0];
  for (size_t i = 1; i < time.size(); ++i) {
    lo = std::min(lo, time[i]);
    hi = std::max(hi, time[i]);
  }
  return hi - lo;
}

EventBatch EventBatch::FromEvents(const std::vector<Event>& events) {
  EventBatch b;
  b.Reserve(events.size());
  for (const Event& e : events) b.Append(e);
  return b;
}

void SelectTypeRows(const EventBatch& b, EventTypeId t,
                    std::vector<uint32_t>* rows) {
  const EventTypeId* types = b.type.data();
  const size_t n = b.size();
  for (size_t i = 0; i < n; ++i) {
    if (types[i] == t) rows->push_back(static_cast<uint32_t>(i));
  }
}

size_t FilterRowsMod(const EventBatch& b, int attr, int64_t modulus,
                     std::vector<uint32_t>* rows) {
  MUSE_CHECK(attr >= 0 && attr < kNumAttrs, "bad attr index");
  MUSE_CHECK(modulus >= 1, "filter modulus must be positive");
  const int64_t* col = b.attrs[attr].data();
  uint32_t* dst = rows->data();
  size_t kept = 0;
  const size_t n = rows->size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = dst[i];
    dst[kept] = r;
    kept += static_cast<size_t>(EuclidMod(col[r], modulus) == 0);
  }
  const size_t dropped = n - kept;
  rows->resize(kept);
  return dropped;
}

void GatherAttr(const EventBatch& b, int attr,
                const std::vector<uint32_t>& rows,
                std::vector<int64_t>* keys) {
  MUSE_CHECK(attr >= 0 && attr < kNumAttrs, "bad attr index");
  const int64_t* col = b.attrs[attr].data();
  keys->resize(rows.size());
  int64_t* dst = keys->data();
  for (size_t i = 0; i < rows.size(); ++i) dst[i] = col[rows[i]];
}

void ComputeUnaryPassMask(const EventBatch& b, EventTypeId target_type,
                          const std::vector<Predicate>& preds,
                          std::vector<uint8_t>* pass) {
  const size_t n = b.size();
  pass->resize(n);
  uint8_t* out = pass->data();
  const EventTypeId* types = b.type.data();
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(types[i] == target_type);
  }
  for (const Predicate& p : preds) {
    if (p.kind != Predicate::Kind::kFilter) continue;
    if (p.left_type != target_type) continue;
    const int64_t* col = b.attrs[p.left_attr].data();
    const int64_t m = p.modulus;
    for (size_t i = 0; i < n; ++i) {
      out[i] &= static_cast<uint8_t>(EuclidMod(col[i], m) == 0);
    }
  }
}

}  // namespace muse
