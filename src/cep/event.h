#ifndef MUSE_CEP_EVENT_H_
#define MUSE_CEP_EVENT_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/typeset.h"

namespace muse {

/// Identifier of a network node (§2.1). Dense, starting at zero.
using NodeId = uint32_t;

/// Number of payload attributes carried by every event. Two attributes are
/// sufficient for the paper's workloads (e.g. the cluster-monitoring queries
/// correlate on a task id and a job id).
inline constexpr int kNumAttrs = 2;

/// An event: an instantiation of an event type with a unique identifier,
/// an occurrence timestamp, an origin node, and payload attributes (§2.1).
///
/// `seq` is the event's position in the conceptual *global trace*: the
/// interleaving of all local traces, totally ordered by timestamp with ties
/// resolved deterministically (§2.1). All ordering decisions in query
/// semantics (SEQ spans, NSEQ "in between") are made on `seq`, never on raw
/// timestamps, so simultaneous events have unambiguous semantics.
struct Event {
  EventTypeId type = 0;
  NodeId origin = 0;
  /// Index in the global trace; unique and consistent with `time`.
  uint64_t seq = 0;
  /// Occurrence timestamp in milliseconds.
  uint64_t time = 0;
  /// Payload attributes referenced by predicates.
  std::array<int64_t, kNumAttrs> attrs = {0, 0};

  friend bool operator==(const Event& a, const Event& b) {
    return a.seq == b.seq;  // seq is unique within a trace
  }

  std::string ToString() const {
    return "E" + std::to_string(type) + "@" + std::to_string(seq) + "/n" +
           std::to_string(origin);
  }
};

}  // namespace muse

#endif  // MUSE_CEP_EVENT_H_
