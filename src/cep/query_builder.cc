// Combinators for building canonical query ASTs.
//
// Canonicalization performed here:
//  * Directly nested operators of the same kind are flattened
//    (SEQ(SEQ(A,B),C) -> SEQ(A,B,C)), which both simplifies semantics and
//    satisfies the validity rule of §2.2.
//  * Children of the commutative operators AND and OR are sorted by
//    structural signature, so that AND(C,L) == AND(L,C) and equivalent
//    projections of different queries share placements (§6.2).
//  * Single-child composites collapse to their child.

#include <algorithm>
#include <utility>

#include "src/cep/query.h"
#include "src/common/check.h"

namespace muse {

/// Friend of Query that hosts the arena-merging machinery.
struct QueryCombinator {
  /// Copies the subtree rooted at `src_idx` of `src` into `dst_ops`,
  /// returning the new root index.
  static int CopySubtree(const Query& src, int src_idx,
                         std::vector<QueryOp>* dst_ops) {
    const QueryOp& op = src.ops_[src_idx];
    QueryOp copy;
    copy.kind = op.kind;
    copy.type = op.type;
    copy.children.reserve(op.children.size());
    for (int child : op.children) {
      copy.children.push_back(CopySubtree(src, child, dst_ops));
    }
    dst_ops->push_back(std::move(copy));
    return static_cast<int>(dst_ops->size()) - 1;
  }

  static Query Combine(OpKind kind, std::vector<Query> children) {
    MUSE_CHECK(!children.empty(), "composite operator needs children");
    for (const Query& c : children) {
      MUSE_CHECK(c.IsInitialized(), "uninitialized child query");
    }
    // Flatten same-kind nesting (not for NSEQ, whose children are
    // positionally meaningful) into a list of subtree references first.
    struct Unit {
      const Query* src;
      int idx;
    };
    std::vector<Unit> units;
    for (const Query& c : children) {
      const bool flatten =
          kind != OpKind::kNseq && c.ops_[c.root_].kind == kind;
      if (flatten) {
        for (int grandchild : c.ops_[c.root_].children) {
          units.push_back(Unit{&c, grandchild});
        }
      } else {
        units.push_back(Unit{&c, c.root_});
      }
    }
    // Canonical child order for commutative operators — over the
    // *flattened* list: sorting the children before flattening would leave
    // a nested same-kind child's grandchildren spliced in as one unsorted
    // block, so OR(OR(b,d),a,c) and OR(a,b,c,d) would disagree on
    // signature despite being the same query.
    if (kind == OpKind::kAnd || kind == OpKind::kOr) {
      std::stable_sort(units.begin(), units.end(),
                       [](const Unit& a, const Unit& b) {
                         return a.src->SubtreeSignature(a.idx) <
                                b.src->SubtreeSignature(b.idx);
                       });
    }

    std::vector<QueryOp> ops;
    std::vector<int> child_roots;
    child_roots.reserve(units.size());
    for (const Unit& u : units) {
      child_roots.push_back(CopySubtree(*u.src, u.idx, &ops));
    }
    std::vector<Predicate> preds;
    uint64_t window = kNoWindow;
    for (Query& c : children) {
      for (Predicate& p : c.predicates_) preds.push_back(std::move(p));
      if (c.window_ != kNoWindow) {
        window = window == kNoWindow ? c.window_ : std::min(window, c.window_);
      }
    }

    if (child_roots.size() == 1) {
      // Single-child composite collapses to the child.
      return Query::FromParts(std::move(ops), child_roots[0], std::move(preds),
                              window);
    }
    QueryOp root;
    root.kind = kind;
    root.children = std::move(child_roots);
    ops.push_back(std::move(root));
    return Query::FromParts(std::move(ops), static_cast<int>(ops.size()) - 1,
                            std::move(preds), window);
  }
};

Query Query::Primitive(EventTypeId type) {
  QueryOp op;
  op.kind = OpKind::kPrimitive;
  op.type = type;
  return FromParts({std::move(op)}, 0, {}, kNoWindow);
}

Query Query::Seq(std::vector<Query> children) {
  return QueryCombinator::Combine(OpKind::kSeq, std::move(children));
}

Query Query::And(std::vector<Query> children) {
  return QueryCombinator::Combine(OpKind::kAnd, std::move(children));
}

Query Query::Or(std::vector<Query> children) {
  return QueryCombinator::Combine(OpKind::kOr, std::move(children));
}

Query Query::Nseq(Query first, Query negated, Query last) {
  std::vector<Query> children;
  children.push_back(std::move(first));
  children.push_back(std::move(negated));
  children.push_back(std::move(last));
  return QueryCombinator::Combine(OpKind::kNseq, std::move(children));
}

}  // namespace muse
