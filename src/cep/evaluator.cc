#include "src/cep/evaluator.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace muse {
namespace {

/// Union-find over event type ids, used to detect a join attribute chaining
/// all positive types.
class TypeUnionFind {
 public:
  int Find(int x) {
    while (parent_.size() <= static_cast<size_t>(x)) {
      parent_.push_back(static_cast<int>(parent_.size()));
    }
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// Returns the attribute index if every equality predicate of `q` uses the
/// same attribute on both sides and those predicates connect all positive
/// types into one component; -1 otherwise.
int DetectJoinAttr(const Query& q) {
  int attr = -1;
  TypeUnionFind uf;
  TypeSet positive = q.PositiveTypes();
  int num_equalities = 0;
  for (const Predicate& p : q.predicates()) {
    if (p.kind != Predicate::Kind::kEquality) continue;
    if (!positive.ContainsAll(p.Types())) continue;
    if (p.left_attr != p.right_attr) return -1;
    if (attr == -1) attr = p.left_attr;
    if (p.left_attr != attr) return -1;
    uf.Merge(static_cast<int>(p.left_type), static_cast<int>(p.right_type));
    ++num_equalities;
  }
  if (attr == -1 || num_equalities == 0) return -1;
  if (positive.empty()) return -1;
  int root = uf.Find(static_cast<int>(positive.First()));
  for (EventTypeId t : positive) {
    if (uf.Find(static_cast<int>(t)) != root) return -1;
  }
  return attr;
}

}  // namespace

ProjectionEvaluator::ProjectionEvaluator(Query target,
                                         std::vector<Query> parts,
                                         EvaluatorOptions options)
    : target_(std::move(target)), parts_(std::move(parts)), options_(options) {
  MUSE_CHECK(target_.IsInitialized(), "evaluator needs a target query");
  MUSE_CHECK(!parts_.empty(), "evaluator needs at least one part");

  TypeSet negated = target_.NegatedTypes();
  TypeSet positive_cover;
  part_anti_.resize(parts_.size());
  buffers_.resize(parts_.size());
  for (int i = 0; i < num_parts(); ++i) {
    // Polarity by primitive types; coverage by *positive* types, since a
    // positive part may itself contain a full NSEQ whose negated events do
    // not appear in its matches.
    TypeSet prim = parts_[i].PrimitiveTypes();
    const bool anti = !prim.empty() && prim.IsSubsetOf(negated);
    part_anti_[i] = anti;
    if (anti) {
      anti_parts_.push_back(i);
    } else {
      TypeSet positive = parts_[i].PositiveTypes();
      MUSE_CHECK(positive.IsSubsetOf(target_.PositiveTypes()),
                 "positive part mixes positive and negated types");
      positive_parts_.push_back(i);
      positive_cover = positive_cover.Union(positive);
    }
  }
  MUSE_CHECK(positive_cover == target_.PositiveTypes(),
             "positive parts must cover the target's positive types");

  // Wire each NSEQ operator to the anti part carrying its middle child's
  // matches.
  for (int idx = 0; idx < target_.num_ops(); ++idx) {
    const QueryOp& op = target_.op(idx);
    if (op.kind != OpKind::kNseq) continue;
    NseqInfo info;
    info.before = target_.SubtreeTypes(op.children[0]).Minus(negated);
    info.after = target_.SubtreeTypes(op.children[2]).Minus(negated);
    TypeSet middle = target_.SubtreeTypes(op.children[1]);
    info.anti_part = -1;
    for (int p : anti_parts_) {
      if (parts_[p].PrimitiveTypes() == middle) {
        info.anti_part = p;
        break;
      }
    }
    MUSE_CHECK(info.anti_part >= 0,
               "NSEQ target needs an anti part matching the middle child");
    nseqs_.push_back(info);
  }

  join_attr_ = DetectJoinAttr(target_);
}

int64_t ProjectionEvaluator::KeyOf(const Match& m) const {
  if (join_attr_ < 0) return 0;
  return m.events.front().attrs[join_attr_];
}

bool ProjectionEvaluator::SharesJoinKey(const Match& m) const {
  if (join_attr_ < 0) return true;
  const int64_t key = m.events.front().attrs[join_attr_];
  for (const Event& e : m.events) {
    if (e.attrs[join_attr_] != key) return false;
  }
  return true;
}

void ProjectionEvaluator::Insert(int part_idx, const Match& m) {
  Buffer& buf = buffers_[part_idx];
  buf.by_key[KeyOf(m)].push_back(m);
  ++buf.size;
  ++stats_.buffered;
  stats_.peak_buffered = std::max(stats_.peak_buffered, stats_.buffered);
  if (++inserts_since_eviction_ >= 256) EvictExpired();
}

void ProjectionEvaluator::EvictExpired() {
  inserts_since_eviction_ = 0;
  if (target_.window() == kNoWindow) return;
  const uint64_t horizon = target_.window() + options_.eviction_slack_ms;
  if (watermark_time_ <= horizon) return;
  const uint64_t cutoff = watermark_time_ - horizon;
  for (Buffer& buf : buffers_) {
    for (auto it = buf.by_key.begin(); it != buf.by_key.end();) {
      std::vector<Match>& matches = it->second;
      auto keep_end = std::remove_if(
          matches.begin(), matches.end(),
          [cutoff](const Match& m) { return m.MaxTime() < cutoff; });
      uint64_t removed = static_cast<uint64_t>(matches.end() - keep_end);
      matches.erase(keep_end, matches.end());
      buf.size -= removed;
      stats_.buffered -= removed;
      if (matches.empty()) {
        it = buf.by_key.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ProjectionEvaluator::OnMatch(int part_idx, const Match& m,
                                  std::vector<Match>* out) {
  MUSE_CHECK(part_idx >= 0 && part_idx < num_parts(), "part index range");
  MUSE_CHECK(!m.empty(), "empty match");
  ++stats_.inputs;
  watermark_time_ = std::max(watermark_time_, m.MaxTime());

  if (part_anti_[part_idx]) {
    // New anti match: store it and prune pending candidates it invalidates.
    Insert(part_idx, m);
    for (const NseqInfo& info : nseqs_) {
      if (info.anti_part != part_idx) continue;
      auto keep_end = std::remove_if(
          pending_.begin(), pending_.end(), [&](const Match& cand) {
            return AntiMatchInvalidates(cand, info.before, info.after, m);
          });
      pending_.erase(keep_end, pending_.end());
    }
    return;
  }

  if (!SharesJoinKey(m)) return;  // can never satisfy the equality chain
  Insert(part_idx, m);
  JoinFrom(part_idx, m, out);
}

void ProjectionEvaluator::JoinFrom(int arrival_part, const Match& m,
                                   std::vector<Match>* out) {
  // Join the new match with the buffers of all *other* positive parts.
  std::vector<int> order;
  for (int p : positive_parts_) {
    if (p != arrival_part) order.push_back(p);
  }
  JoinRecursive(order, 0, m, KeyOf(m), out);
}

void ProjectionEvaluator::JoinRecursive(const std::vector<int>& order,
                                        size_t depth, const Match& partial,
                                        int64_t key, std::vector<Match>* out) {
  if (options_.max_matches != 0 &&
      stats_.matches_emitted >= options_.max_matches) {
    return;
  }
  if (depth == order.size()) {
    EmitCandidate(partial, out);
    return;
  }
  const Buffer& buf = buffers_[order[depth]];
  auto it = buf.by_key.find(key);
  if (it == buf.by_key.end()) return;
  const uint64_t window = target_.window();
  for (const Match& other : it->second) {
    if (window != kNoWindow) {
      // Early window prune: the combined span must fit the window.
      uint64_t lo = std::min(partial.MinTime(), other.MinTime());
      uint64_t hi = std::max(partial.MaxTime(), other.MaxTime());
      if (hi - lo > window) continue;
    }
    Match merged;
    if (!MergeIfConsistent(partial, other, &merged)) continue;
    JoinRecursive(order, depth + 1, merged, key, out);
  }
}

void ProjectionEvaluator::EmitCandidate(const Match& candidate,
                                        std::vector<Match>* out) {
  ++stats_.candidates_checked;
  if (!StructurallyMatches(target_, candidate)) return;
  if (nseqs_.empty()) {
    ++stats_.matches_emitted;
    out->push_back(candidate);
    return;
  }
  if (InvalidatedByAnti(candidate)) return;
  // Hold until Flush: a later-arriving anti match may still invalidate it.
  pending_.push_back(candidate);
}

bool ProjectionEvaluator::InvalidatedByAnti(const Match& candidate) const {
  for (const NseqInfo& info : nseqs_) {
    const Buffer& buf = buffers_[info.anti_part];
    for (const auto& [key, matches] : buf.by_key) {
      for (const Match& anti : matches) {
        if (AntiMatchInvalidates(candidate, info.before, info.after, anti)) {
          return true;
        }
      }
    }
  }
  return false;
}

void ProjectionEvaluator::Flush(std::vector<Match>* out) {
  for (Match& m : pending_) {
    if (options_.max_matches != 0 &&
        stats_.matches_emitted >= options_.max_matches) {
      break;
    }
    ++stats_.matches_emitted;
    out->push_back(std::move(m));
  }
  pending_.clear();
}

}  // namespace muse
