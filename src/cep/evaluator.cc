#include "src/cep/evaluator.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace muse {
namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// Union-find over event type ids, used to detect a join attribute chaining
/// all positive types.
class TypeUnionFind {
 public:
  int Find(int x) {
    while (parent_.size() <= static_cast<size_t>(x)) {
      parent_.push_back(static_cast<int>(parent_.size()));
    }
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// Returns the attribute index if every equality predicate of `q` uses the
/// same attribute on both sides and those predicates connect all positive
/// types into one component; -1 otherwise.
int DetectJoinAttr(const Query& q) {
  int attr = -1;
  TypeUnionFind uf;
  TypeSet positive = q.PositiveTypes();
  int num_equalities = 0;
  for (const Predicate& p : q.predicates()) {
    if (p.kind != Predicate::Kind::kEquality) continue;
    if (!positive.ContainsAll(p.Types())) continue;
    if (p.left_attr != p.right_attr) return -1;
    if (attr == -1) attr = p.left_attr;
    if (p.left_attr != attr) return -1;
    uf.Merge(static_cast<int>(p.left_type), static_cast<int>(p.right_type));
    ++num_equalities;
  }
  if (attr == -1 || num_equalities == 0) return -1;
  if (positive.empty()) return -1;
  int root = uf.Find(static_cast<int>(positive.First()));
  for (EventTypeId t : positive) {
    if (uf.Find(static_cast<int>(t)) != root) return -1;
  }
  return attr;
}

}  // namespace

ProjectionEvaluator::ProjectionEvaluator(Query target,
                                         std::vector<Query> parts,
                                         EvaluatorOptions options)
    : target_(std::move(target)), parts_(std::move(parts)), options_(options) {
  MUSE_CHECK(target_.IsInitialized(), "evaluator needs a target query");
  MUSE_CHECK(!parts_.empty(), "evaluator needs at least one part");

  TypeSet negated = target_.NegatedTypes();
  TypeSet positive_cover;
  part_anti_.resize(parts_.size());
  buffers_.resize(parts_.size());
  for (int i = 0; i < num_parts(); ++i) {
    // Polarity by primitive types; coverage by *positive* types, since a
    // positive part may itself contain a full NSEQ whose negated events do
    // not appear in its matches.
    TypeSet prim = parts_[i].PrimitiveTypes();
    const bool anti = !prim.empty() && prim.IsSubsetOf(negated);
    part_anti_[i] = anti;
    if (anti) {
      anti_parts_.push_back(i);
    } else {
      TypeSet positive = parts_[i].PositiveTypes();
      MUSE_CHECK(positive.IsSubsetOf(target_.PositiveTypes()),
                 "positive part mixes positive and negated types");
      positive_parts_.push_back(i);
      positive_cover = positive_cover.Union(positive);
    }
  }
  MUSE_CHECK(positive_cover == target_.PositiveTypes(),
             "positive parts must cover the target's positive types");

  // Wire each NSEQ operator to the anti part carrying its middle child's
  // matches.
  for (int idx = 0; idx < target_.num_ops(); ++idx) {
    const QueryOp& op = target_.op(idx);
    if (op.kind != OpKind::kNseq) continue;
    NseqInfo info;
    info.before = target_.SubtreeTypes(op.children[0]).Minus(negated);
    info.after = target_.SubtreeTypes(op.children[2]).Minus(negated);
    TypeSet middle = target_.SubtreeTypes(op.children[1]);
    info.anti_part = -1;
    for (int p : anti_parts_) {
      if (parts_[p].PrimitiveTypes() == middle) {
        info.anti_part = p;
        break;
      }
    }
    MUSE_CHECK(info.anti_part >= 0,
               "NSEQ target needs an anti part matching the middle child");
    nseqs_.push_back(info);
  }

  join_attr_ = DetectJoinAttr(target_);
}

int64_t ProjectionEvaluator::KeyOf(const Match& m) const {
  if (join_attr_ < 0) return 0;
  return m.events.front().attrs[join_attr_];
}

bool ProjectionEvaluator::SharesJoinKey(const Match& m) const {
  if (join_attr_ < 0) return true;
  const int64_t key = m.events.front().attrs[join_attr_];
  for (const Event& e : m.events) {
    if (e.attrs[join_attr_] != key) return false;
  }
  return true;
}

void ProjectionEvaluator::Insert(int part_idx, const Match& m) {
  Buffer& buf = buffers_[part_idx];
  KeyBuffer& kb = buf.by_key[KeyOf(m)];
  std::vector<Match>& vec = kb.matches;
  // Keep the per-key buffer ordered by MaxTime. The watermark mostly
  // advances, so this is an append except for skewed arrivals, which
  // displace at most the skew-window suffix (never the evicted prefix:
  // anything older than the evicted entries is beyond the horizon too).
  if (vec.empty() || vec.back().MaxTime() <= m.MaxTime()) {
    vec.push_back(m);
  } else {
    auto pos = std::upper_bound(
        vec.begin() + static_cast<ptrdiff_t>(kb.head), vec.end(), m.MaxTime(),
        [](uint64_t t, const Match& x) { return t < x.MaxTime(); });
    vec.insert(pos, m);
  }
  ++buf.size;
  ++stats_.buffered;
  stats_.peak_buffered = std::max(stats_.peak_buffered, stats_.buffered);
  if (++inserts_since_eviction_ >= 256) EvictExpired();
}

void ProjectionEvaluator::EvictExpired() {
  inserts_since_eviction_ = 0;
  if (target_.window() == kNoWindow) return;
  const uint64_t horizon = SatAdd(target_.window(), options_.eviction_slack_ms);
  // Re-arm the watermark trigger: the next eviction runs once the watermark
  // has advanced by half the horizon, which caps any buffer at ~1.5x its
  // window-bounded size while amortizing the per-key sweep.
  next_eviction_watermark_ =
      SatAdd(watermark_time_, std::max<uint64_t>(1, horizon / 2));
  if (watermark_time_ <= horizon) return;
  const uint64_t cutoff = watermark_time_ - horizon;
  for (Buffer& buf : buffers_) {
    for (auto it = buf.by_key.begin(); it != buf.by_key.end();) {
      KeyBuffer& kb = it->second;
      std::vector<Match>& matches = kb.matches;
      // Ordered by MaxTime: the expired matches form a prefix. Advance the
      // head past it; physical compaction is deferred until the dead
      // prefix dominates the vector.
      auto first_live = std::lower_bound(
          matches.begin() + static_cast<ptrdiff_t>(kb.head), matches.end(),
          cutoff, [](const Match& m, uint64_t c) { return m.MaxTime() < c; });
      const size_t new_head =
          static_cast<size_t>(first_live - matches.begin());
      const uint64_t removed = static_cast<uint64_t>(new_head - kb.head);
      if (removed != 0) {
        kb.head = new_head;
        buf.size -= removed;
        stats_.buffered -= removed;
        stats_.evictions += removed;
      }
      if (kb.head == matches.size()) {
        it = buf.by_key.erase(it);
      } else {
        if (kb.head > 16 && kb.head * 2 >= matches.size()) {
          matches.erase(matches.begin(),
                        matches.begin() + static_cast<ptrdiff_t>(kb.head));
          kb.head = 0;
        }
        ++it;
      }
    }
  }
}

void ProjectionEvaluator::OnMatch(int part_idx, const Match& m,
                                  std::vector<Match>* out) {
  MUSE_CHECK(part_idx >= 0 && part_idx < num_parts(), "part index range");
  MUSE_CHECK(!m.empty(), "empty match");
  ++stats_.inputs;
  watermark_time_ = std::max(watermark_time_, m.MaxTime());
  if (watermark_time_ >= next_eviction_watermark_) EvictExpired();

  if (part_anti_[part_idx]) {
    // New anti match: store it and prune pending candidates it invalidates.
    Insert(part_idx, m);
    for (const NseqInfo& info : nseqs_) {
      if (info.anti_part != part_idx) continue;
      auto keep_end = std::remove_if(
          pending_.begin(), pending_.end(), [&](const PendingCandidate& pc) {
            return AntiMatchInvalidates(pc.match, info.before, info.after, m);
          });
      const uint64_t removed =
          static_cast<uint64_t>(pending_.end() - keep_end);
      pending_.erase(keep_end, pending_.end());
      stats_.pending -= removed;
      stats_.pending_invalidated += removed;
    }
    ReleasePending(out);
    return;
  }

  if (!SharesJoinKey(m)) return;  // can never satisfy the equality chain
  Insert(part_idx, m);
  JoinFrom(part_idx, m, out);
  ReleasePending(out);
}

void ProjectionEvaluator::OnEventBatch(const EventBatch& batch,
                                       const int* part_of_type,
                                       size_t num_types,
                                       std::vector<Match>* out) {
  const size_t n = batch.size();
  if (n == 0) return;
  ++stats_.batches;
  stats_.batch_rows += n;

  // Route rows to their positive parts: one flat pass over the type column.
  batch_rows_.resize(parts_.size());
  for (auto& rows : batch_rows_) rows.clear();
  const EventTypeId* types = batch.type.data();
  for (size_t i = 0; i < n; ++i) {
    const EventTypeId t = types[i];
    const int p = static_cast<size_t>(t) < num_types ? part_of_type[t] : -1;
    if (p >= 0) batch_rows_[p].push_back(static_cast<uint32_t>(i));
  }

  // Compact each part's candidate rows through its unary filter kernels.
  // The kernels only apply when the part is a singleton primitive (every
  // routed row then has the predicate's type); QueryEngine's positive parts
  // always are.
  for (int p : positive_parts_) {
    std::vector<uint32_t>& rows = batch_rows_[p];
    if (rows.empty()) continue;
    TypeSet prim = parts_[p].PrimitiveTypes();
    if (prim.size() != 1) continue;
    const EventTypeId part_type = prim.First();
    for (const Predicate& pred : parts_[p].predicates()) {
      if (pred.kind != Predicate::Kind::kFilter) continue;
      if (pred.left_type != part_type) continue;
      stats_.batch_rows_filtered +=
          FilterRowsMod(batch, pred.left_attr, pred.modulus, &rows);
      if (rows.empty()) break;
    }
  }

  if (batch.SpanMs() <= options_.eviction_slack_ms) {
    // Bulk: whole part columns at a time. No eviction cutoff or pending
    // release can fire inside the batch (span <= slack), and each
    // cross-part pair is formed exactly once — by whichever side is
    // ingested second — so part order is free and chosen for locality.
    ++stats_.batch_bulk;
    for (int p : positive_parts_) {
      for (uint32_t r : batch_rows_[p]) {
        OnMatch(p, Match::Single(batch.At(r)), out);
      }
    }
  } else {
    // The batch spans more than the slack contract covers: replay the
    // surviving rows in trace order so eviction and pending release see
    // the same watermark schedule as the scalar path.
    batch_part_of_row_.assign(n, -1);
    for (int p : positive_parts_) {
      for (uint32_t r : batch_rows_[p]) batch_part_of_row_[r] = p;
    }
    for (size_t i = 0; i < n; ++i) {
      const int p = batch_part_of_row_[i];
      if (p >= 0) OnMatch(p, Match::Single(batch.At(i)), out);
    }
  }
}

void ProjectionEvaluator::ReleasePending(std::vector<Match>* out) {
  // A pending candidate is clear once the watermark strictly passes its
  // release point: any anti match able to invalidate it lies between its
  // spans in the trace, so the anti's own span ends at or before the
  // candidate's max time, and the skew contract (eviction_slack_ms) says
  // such an input would have arrived before the watermark passed max time
  // + slack.
  while (!pending_.empty() && pending_.front().release_at < watermark_time_) {
    PendingCandidate& pc = pending_.front();
    if (options_.max_matches == 0 ||
        stats_.matches_emitted < options_.max_matches) {
      ++stats_.matches_emitted;
      ++stats_.pending_released;
      out->push_back(std::move(pc.match));
    }
    pending_.pop_front();
    --stats_.pending;
  }
}

void ProjectionEvaluator::JoinFrom(int arrival_part, const Match& m,
                                   std::vector<Match>* out) {
  // Join the new match with the buffers of all *other* positive parts.
  std::vector<int> order;
  for (int p : positive_parts_) {
    if (p != arrival_part) order.push_back(p);
  }
  JoinRecursive(order, 0, m, KeyOf(m), out);
}

void ProjectionEvaluator::JoinRecursive(const std::vector<int>& order,
                                        size_t depth, const Match& partial,
                                        int64_t key, std::vector<Match>* out) {
  if (options_.max_matches != 0 &&
      stats_.matches_emitted >= options_.max_matches) {
    return;
  }
  if (depth == order.size()) {
    EmitCandidate(partial, out);
    return;
  }
  const Buffer& buf = buffers_[order[depth]];
  auto it = buf.by_key.find(key);
  if (it == buf.by_key.end()) return;
  const KeyBuffer& kb = it->second;
  const uint64_t window = target_.window();
  const Match* cur = kb.begin();
  const Match* end = kb.end();
  uint64_t hi_cut = UINT64_MAX;
  if (window != kNoWindow) {
    // Window range scan over the MaxTime-ordered buffer: a partner must
    // satisfy MaxTime >= partial.MaxTime() - window (else the combined
    // span already exceeds the window) and MaxTime <= partial.MinTime() +
    // window (else likewise) — a binary-searched start plus an early
    // break. Composite partners may still fail on MinTime and are checked
    // exactly below.
    const uint64_t lo_cut =
        partial.MaxTime() > window ? partial.MaxTime() - window : 0;
    hi_cut = SatAdd(partial.MinTime(), window);
    cur = std::lower_bound(
        cur, end, lo_cut,
        [](const Match& m, uint64_t c) { return m.MaxTime() < c; });
  }
  for (; cur != end; ++cur) {
    const Match& other = *cur;
    if (window != kNoWindow) {
      if (other.MaxTime() > hi_cut) break;  // sorted: all later fail too
      const uint64_t lo = std::min(partial.MinTime(), other.MinTime());
      const uint64_t hi = std::max(partial.MaxTime(), other.MaxTime());
      if (hi - lo > window) continue;
    }
    Match merged;
    if (!MergeIfConsistent(partial, other, &merged)) continue;
    JoinRecursive(order, depth + 1, merged, key, out);
  }
}

void ProjectionEvaluator::EmitCandidate(const Match& candidate,
                                        std::vector<Match>* out) {
  ++stats_.candidates_checked;
  if (!StructurallyMatches(target_, candidate)) return;
  if (nseqs_.empty()) {
    ++stats_.matches_emitted;
    out->push_back(candidate);
    return;
  }
  if (InvalidatedByAnti(candidate)) return;
  // Hold until the watermark passes the last instant an invalidating anti
  // could still arrive; ReleasePending pops cleared candidates from the
  // front, terminal Flush drains the rest.
  const uint64_t release_at =
      SatAdd(candidate.MaxTime(), options_.eviction_slack_ms);
  PendingCandidate pc{candidate, release_at};
  if (pending_.empty() || pending_.back().release_at <= release_at) {
    pending_.push_back(std::move(pc));
  } else {
    auto pos = std::upper_bound(
        pending_.begin(), pending_.end(), release_at,
        [](uint64_t t, const PendingCandidate& x) { return t < x.release_at; });
    pending_.insert(pos, std::move(pc));
  }
  ++stats_.pending;
  stats_.peak_pending = std::max(stats_.peak_pending, stats_.pending);
}

bool ProjectionEvaluator::InvalidatedByAnti(const Match& candidate) const {
  for (const NseqInfo& info : nseqs_) {
    const Buffer& buf = buffers_[info.anti_part];
    for (const auto& [key, kb] : buf.by_key) {
      for (const Match* anti = kb.begin(); anti != kb.end(); ++anti) {
        if (AntiMatchInvalidates(candidate, info.before, info.after, *anti)) {
          return true;
        }
      }
    }
  }
  return false;
}

void ProjectionEvaluator::Flush(std::vector<Match>* out) {
  for (PendingCandidate& pc : pending_) {
    if (options_.max_matches != 0 &&
        stats_.matches_emitted >= options_.max_matches) {
      break;
    }
    ++stats_.matches_emitted;
    out->push_back(std::move(pc.match));
  }
  pending_.clear();
  stats_.pending = 0;
}

}  // namespace muse
