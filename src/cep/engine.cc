#include "src/cep/engine.h"

#include <utility>

#include "src/common/check.h"

namespace muse {

QueryEngine::QueryEngine(const Query& q, EvaluatorOptions options)
    : query_(q), options_(options) {
  MUSE_CHECK(!q.ContainsOr(),
             "QueryEngine evaluates OR-free queries; use SplitDisjunctions");
  std::vector<Query> parts;
  part_of_type_.assign(64, -1);
  for (EventTypeId t : q.PositiveTypes()) {
    part_of_type_[t] = static_cast<int>(parts.size());
    parts.push_back(q.PrimitiveProjection(t));
  }
  // One anti part + sub-engine per NSEQ middle child.
  std::vector<int> middle_roots;
  for (int i = 0; i < q.num_ops(); ++i) {
    if (q.op(i).kind == OpKind::kNseq) {
      middle_roots.push_back(q.op(i).children[1]);
    }
  }
  std::vector<int> anti_part_idx;
  for (int mid : middle_roots) {
    anti_part_idx.push_back(static_cast<int>(parts.size()));
    parts.push_back(q.Subquery(mid));
  }
  main_ = std::make_unique<ProjectionEvaluator>(q, std::move(parts), options);
  for (size_t i = 0; i < middle_roots.size(); ++i) {
    MiddleEngine me;
    me.engine = std::make_unique<QueryEngine>(q.Subquery(middle_roots[i]),
                                              options);
    me.anti_part = anti_part_idx[i];
    middles_.push_back(std::move(me));
  }
}

void QueryEngine::OnEvent(const Event& e, std::vector<Match>* out) {
  // Route to NSEQ middle sub-engines first so that an invalidating anti
  // match is known before any candidate using later events forms.
  for (MiddleEngine& me : middles_) {
    if (!me.engine->query().PrimitiveTypes().Contains(e.type)) continue;
    std::vector<Match> anti;
    me.engine->OnEvent(e, &anti);
    me.engine->Flush(&anti);
    for (const Match& m : anti) {
      main_->OnMatch(me.anti_part, m, out);
    }
  }
  if (static_cast<size_t>(e.type) < part_of_type_.size() &&
      part_of_type_[e.type] >= 0) {
    main_->OnEvent(part_of_type_[e.type], e, out);
  }
}

void QueryEngine::OnBatch(const EventBatch& batch, std::vector<Match>* out) {
  if (batch.empty()) return;
  if (!middles_.empty() && batch.SpanMs() > options_.eviction_slack_ms) {
    // Anti matches must interleave with positive ingestion once the batch
    // outspans the slack contract; replay the scalar path, which does.
    for (size_t i = 0; i < batch.size(); ++i) OnEvent(batch.At(i), out);
    return;
  }
  // All anti matches of the batch are ingested before any positive row, so
  // candidates formed from this batch see every invalidating anti either in
  // the buffer (EmitCandidate's InvalidatedByAnti) or via pending pruning —
  // order-insensitive because span <= slack keeps releases out of the batch.
  for (MiddleEngine& me : middles_) {
    std::vector<Match> anti;
    me.engine->OnBatch(batch, &anti);
    me.engine->Flush(&anti);
    for (const Match& m : anti) {
      main_->OnMatch(me.anti_part, m, out);
    }
  }
  main_->OnEventBatch(batch, part_of_type_.data(), part_of_type_.size(), out);
}

void QueryEngine::Flush(std::vector<Match>* out) { main_->Flush(out); }

namespace {

void ExportEvaluatorStats(obs::MetricsRegistry* registry,
                          const obs::LabelSet& labels,
                          const EvaluatorStats& stats) {
  registry->GetCounter("engine_inputs_total", labels)->Add(stats.inputs);
  registry->GetCounter("engine_candidates_checked_total", labels)
      ->Add(stats.candidates_checked);
  registry->GetCounter("engine_matches_emitted_total", labels)
      ->Add(stats.matches_emitted);
  registry->GetGauge("engine_buffered", labels)
      ->Set(static_cast<double>(stats.buffered));
  registry->GetGauge("engine_peak_buffered", labels)
      ->Set(static_cast<double>(stats.peak_buffered));
  registry->GetCounter("evaluator_evictions_total", labels)
      ->Add(stats.evictions);
  registry->GetCounter("evaluator_pending_released_total", labels)
      ->Add(stats.pending_released);
  registry->GetCounter("evaluator_pending_invalidated_total", labels)
      ->Add(stats.pending_invalidated);
  registry->GetGauge("evaluator_pending", labels)
      ->Set(static_cast<double>(stats.pending));
  registry->GetGauge("evaluator_peak_pending", labels)
      ->Set(static_cast<double>(stats.peak_pending));
  registry->GetCounter("engine_batches_total", labels)->Add(stats.batches);
  registry->GetCounter("engine_batch_rows_total", labels)
      ->Add(stats.batch_rows);
  registry->GetCounter("engine_batch_rows_filtered_total", labels)
      ->Add(stats.batch_rows_filtered);
  registry->GetCounter("engine_batch_bulk_total", labels)
      ->Add(stats.batch_bulk);
}

}  // namespace

void QueryEngine::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& query_label) const {
  if (registry == nullptr) return;
  ExportEvaluatorStats(registry, obs::LabelSet{{"query", query_label}},
                       main_->stats());
  for (const MiddleEngine& me : middles_) {
    me.engine->ExportMetrics(registry, query_label + ".anti" +
                                           std::to_string(me.anti_part));
  }
}

WorkloadEngine::WorkloadEngine(const std::vector<Query>& workload,
                               EvaluatorOptions options) {
  engines_.reserve(workload.size());
  for (const Query& q : workload) engines_.emplace_back(q, options);
}

void WorkloadEngine::OnEvent(const Event& e,
                             std::vector<std::vector<Match>>* out) {
  out->resize(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].OnEvent(e, &(*out)[i]);
  }
}

void WorkloadEngine::OnBatch(const EventBatch& batch,
                             std::vector<std::vector<Match>>* out) {
  out->resize(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].OnBatch(batch, &(*out)[i]);
  }
}

void WorkloadEngine::Flush(std::vector<std::vector<Match>>* out) {
  out->resize(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].Flush(&(*out)[i]);
  }
}

void WorkloadEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].ExportMetrics(registry, std::to_string(i));
  }
}

}  // namespace muse
