#include "src/cep/query.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kPrimitive:
      return "PRIM";
    case OpKind::kSeq:
      return "SEQ";
    case OpKind::kAnd:
      return "AND";
    case OpKind::kOr:
      return "OR";
    case OpKind::kNseq:
      return "NSEQ";
  }
  return "?";
}

Query Query::FromParts(std::vector<QueryOp> ops, int root,
                       std::vector<Predicate> predicates, uint64_t window) {
  Query q;
  q.ops_ = std::move(ops);
  q.root_ = root;
  q.predicates_ = std::move(predicates);
  q.window_ = window;
  return q;
}

Query&& Query::WithWindow(uint64_t window) && {
  window_ = window;
  return std::move(*this);
}

Query&& Query::WithPredicate(Predicate pred) && {
  predicates_.push_back(std::move(pred));
  return std::move(*this);
}

TypeSet Query::PrimitiveTypes() const {
  TypeSet s;
  for (const QueryOp& op : ops_) {
    if (op.kind == OpKind::kPrimitive) s.Insert(op.type);
  }
  return s;
}

TypeSet Query::SubtreeTypes(int op_idx) const {
  const QueryOp& op = ops_[op_idx];
  if (op.kind == OpKind::kPrimitive) return TypeSet::Of(op.type);
  TypeSet s;
  for (int child : op.children) s = s.Union(SubtreeTypes(child));
  return s;
}

TypeSet Query::NegatedTypes() const {
  TypeSet s;
  for (int i = 0; i < num_ops(); ++i) {
    const QueryOp& op = ops_[i];
    if (op.kind == OpKind::kNseq) {
      MUSE_CHECK(op.children.size() == 3, "NSEQ must have three children");
      s = s.Union(SubtreeTypes(op.children[1]));
    }
  }
  return s;
}

TypeSet Query::PositiveTypes() const {
  return PrimitiveTypes().Minus(NegatedTypes());
}

bool Query::ContainsKind(OpKind kind) const {
  for (const QueryOp& op : ops_) {
    if (op.kind == kind) return true;
  }
  return false;
}

bool Query::Validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!IsInitialized()) return fail("query is empty");
  if (root_ < 0 || root_ >= num_ops()) return fail("root out of range");

  // Reachability and tree shape: every op except the root has exactly one
  // parent; all ops are reachable from the root.
  std::vector<int> parents(ops_.size(), -1);
  for (int i = 0; i < num_ops(); ++i) {
    const QueryOp& op = ops_[i];
    if (op.kind == OpKind::kPrimitive) {
      if (!op.children.empty()) return fail("primitive operator has children");
      continue;
    }
    if (op.children.size() < 2) {
      return fail("composite operator has arity < 2");
    }
    if (op.kind == OpKind::kNseq && op.children.size() != 3) {
      return fail("NSEQ must have exactly three children");
    }
    for (int child : op.children) {
      if (child < 0 || child >= num_ops()) return fail("child out of range");
      if (parents[child] != -1) return fail("operator has two parents");
      parents[child] = i;
      // Validity rule of §2.2: no directly nested operators of equal kind.
      if (ops_[child].kind == op.kind) {
        return fail("directly nested operators of the same kind");
      }
    }
  }
  for (int i = 0; i < num_ops(); ++i) {
    if (i != root_ && parents[i] == -1) {
      return fail("operator unreachable from root");
    }
  }
  if (parents[root_] != -1) return fail("root has a parent");

  // §6 assumption: primitive event types are unique within the query.
  TypeSet seen;
  for (const QueryOp& op : ops_) {
    if (op.kind != OpKind::kPrimitive) continue;
    if (seen.Contains(op.type)) {
      return fail("event type referenced by two primitive operators");
    }
    seen.Insert(op.type);
  }

  // Predicates must reference types of this query.
  for (const Predicate& p : predicates_) {
    if (!seen.ContainsAll(p.Types())) {
      return fail("predicate references a type not in the query");
    }
  }
  return true;
}

std::string Query::SubtreeString(int op_idx, const TypeRegistry* reg) const {
  const QueryOp& op = ops_[op_idx];
  if (op.kind == OpKind::kPrimitive) {
    if (reg != nullptr && static_cast<int>(op.type) < reg->size()) {
      return reg->Name(op.type);
    }
    return "E" + std::to_string(op.type);
  }
  std::string out = OpKindName(op.kind);
  out += "(";
  for (size_t i = 0; i < op.children.size(); ++i) {
    if (i > 0) out += ",";
    out += SubtreeString(op.children[i], reg);
  }
  out += ")";
  return out;
}

std::string Query::ToString(const TypeRegistry* reg) const {
  if (!IsInitialized()) return "<empty>";
  return SubtreeString(root_, reg);
}

std::string Query::ToSpecString(const TypeRegistry* reg) const {
  if (!IsInitialized()) return "<empty>";
  auto type_name = [reg](EventTypeId t) -> std::string {
    if (reg != nullptr && static_cast<int>(t) < reg->size()) {
      return reg->Name(t);
    }
    return "E" + std::to_string(t);
  };
  std::string out = SubtreeString(root_, reg);
  for (size_t i = 0; i < predicates_.size(); ++i) {
    out += i == 0 ? " WHERE " : " AND ";
    const Predicate& p = predicates_[i];
    out += type_name(p.left_type) + ".a" + std::to_string(p.left_attr);
    if (p.kind == Predicate::Kind::kFilter) {
      out += " % " + std::to_string(p.modulus) + " == 0";
    } else {
      out += " == " + type_name(p.right_type) + ".a" +
             std::to_string(p.right_attr);
    }
  }
  if (window_ != kNoWindow) {
    out += " WITHIN " + std::to_string(window_) + "ms";
  }
  return out;
}

Query Query::Subquery(int op_idx) const {
  std::vector<QueryOp> ops;
  // Recursive post-order copy of the subtree into a fresh arena.
  auto copy = [this, &ops](auto&& self, int idx) -> int {
    const QueryOp& op = ops_[idx];
    QueryOp dup;
    dup.kind = op.kind;
    dup.type = op.type;
    dup.children.reserve(op.children.size());
    for (int child : op.children) dup.children.push_back(self(self, child));
    ops.push_back(std::move(dup));
    return static_cast<int>(ops.size()) - 1;
  };
  int root = copy(copy, op_idx);
  TypeSet types = SubtreeTypes(op_idx);
  std::vector<Predicate> preds;
  for (const Predicate& p : predicates_) {
    if (p.ApplicableTo(types)) preds.push_back(p);
  }
  return FromParts(std::move(ops), root, std::move(preds), window_);
}

Query Query::PrimitiveProjection(EventTypeId t) const {
  MUSE_CHECK(PrimitiveTypes().Contains(t), "type not in query");
  for (int i = 0; i < num_ops(); ++i) {
    if (ops_[i].kind == OpKind::kPrimitive && ops_[i].type == t) {
      return Subquery(i);
    }
  }
  MUSE_CHECK(false, "unreachable");
  return Query();
}

std::string Query::SubtreeSignature(int op_idx) const {
  return SubtreeString(op_idx, nullptr);
}

std::string Query::Signature() const {
  if (!IsInitialized()) return "<empty>";
  std::string sig = SubtreeSignature(root_);
  sig += "|w=";
  sig += window_ == kNoWindow ? "inf" : std::to_string(window_);
  // Predicates in a canonical order.
  std::vector<std::string> preds;
  preds.reserve(predicates_.size());
  for (const Predicate& p : predicates_) preds.push_back(p.ToString());
  std::sort(preds.begin(), preds.end());
  for (const std::string& p : preds) {
    sig += "|";
    sig += p;
  }
  return sig;
}

}  // namespace muse
