#ifndef MUSE_CEP_QUERY_H_
#define MUSE_CEP_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/cep/predicate.h"
#include "src/cep/type_registry.h"
#include "src/common/typeset.h"

namespace muse {

/// Operator kinds of the query language (§2.2). `kPrimitive` detects events
/// of one type; the composite kinds detect patterns over their children's
/// matches:
///  * SEQ  — children's matches in the given order (concatenation);
///  * AND  — children's matches in any order (interleaving);
///  * OR   — any child's match;
///  * NSEQ — first child's match, then third child's match, with no match of
///           the (negated) second child in between.
enum class OpKind : uint8_t { kPrimitive, kSeq, kAnd, kOr, kNseq };

const char* OpKindName(OpKind kind);

/// One operator in a query's operator tree. Operators live in the `Query`'s
/// arena and reference children by index.
struct QueryOp {
  OpKind kind = OpKind::kPrimitive;
  EventTypeId type = 0;        // meaningful iff kind == kPrimitive
  std::vector<int> children;   // empty iff kind == kPrimitive
};

/// Sentinel: no time window (events arbitrarily far apart may match).
inline constexpr uint64_t kNoWindow = std::numeric_limits<uint64_t>::max();

/// A query q = (O, λ, P) with a time window τ_q (§2.2): an operator tree
/// plus a set of predicates over the payload of its primitive operators.
///
/// Construction goes through the static combinators (`Primitive`, `Seq`,
/// `And`, `Or`, `Nseq` — defined in query_builder.cc) or the text parser.
/// The combinators canonicalize: directly nested operators of the same kind
/// are flattened (the validity rule of §2.2), and the children of the
/// commutative operators AND/OR are sorted by structural signature so that
/// e.g. AND(C,L) and AND(L,C) compare equal for plan sharing.
///
/// The planner additionally assumes (as the paper's §6 does) that a query
/// does not contain two primitive operators referencing the same event type;
/// `Validate` enforces this.
class Query {
 public:
  Query() = default;  // empty query; !IsInitialized()

  // -- Combinators (implemented in query_builder.cc) ------------------------
  static Query Primitive(EventTypeId type);
  static Query Seq(std::vector<Query> children);
  static Query And(std::vector<Query> children);
  static Query Or(std::vector<Query> children);
  static Query Nseq(Query first, Query negated, Query last);

  /// Fluent post-construction configuration.
  Query&& WithWindow(uint64_t window) &&;
  Query&& WithPredicate(Predicate pred) &&;
  void set_window(uint64_t window) { window_ = window; }
  void AddPredicate(Predicate pred) { predicates_.push_back(std::move(pred)); }

  // -- Accessors -------------------------------------------------------------
  bool IsInitialized() const { return root_ >= 0; }
  int root() const { return root_; }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const QueryOp& op(int idx) const { return ops_[idx]; }
  const std::vector<QueryOp>& ops() const { return ops_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  uint64_t window() const { return window_; }

  /// The set of event types referenced by primitive operators — O_p as a
  /// `TypeSet` (valid because primitive types are unique within a query).
  TypeSet PrimitiveTypes() const;

  /// Primitive types in the subtree rooted at `op_idx`.
  TypeSet SubtreeTypes(int op_idx) const;

  /// Union of the primitive types of all NSEQ middle (negated) children.
  /// Events of these types never appear in matches of the query; they only
  /// *suppress* matches.
  TypeSet NegatedTypes() const;

  /// PrimitiveTypes() minus NegatedTypes(): the types whose events make up
  /// the query's matches.
  TypeSet PositiveTypes() const;

  int NumPrimitives() const { return PrimitiveTypes().size(); }
  bool ContainsKind(OpKind kind) const;
  bool ContainsNegation() const { return ContainsKind(OpKind::kNseq); }
  bool ContainsOr() const { return ContainsKind(OpKind::kOr); }

  /// Validity per §2.2 plus the §6 assumption: operator tree with a single
  /// root; composite arity ≥ 2 (NSEQ exactly 3); no directly nested
  /// operators of the same kind; no repeated primitive event types.
  bool Validate(std::string* error = nullptr) const;

  /// Modeled selectivity σ(q): product of all predicate selectivities
  /// applicable to this query's primitive types (§2.2).
  double Selectivity() const {
    return CombinedSelectivity(predicates_, PrimitiveTypes());
  }

  /// Human-readable rendering, e.g. "SEQ(AND(C,L),F)". Uses `reg` for type
  /// names when provided, otherwise "E<id>".
  std::string ToString(const TypeRegistry* reg = nullptr) const;

  /// Full SASE-like specification: the pattern plus a WHERE term per
  /// predicate (types referenced by name; WHERE needs no variable bindings
  /// since references fall back to type names) and a WITHIN clause when the
  /// window is bounded. ParseQuery(spec, reg) reconstructs a query with the
  /// same Signature() — the print/parse round trip parser_fuzz_test checks.
  /// `reg` must be the registry the query's types were interned in.
  std::string ToSpecString(const TypeRegistry* reg = nullptr) const;

  /// Canonical structural identity: two queries (or projections, which are
  /// queries) with equal signatures detect the same patterns and can share
  /// placements across a workload (§6.2). Covers the operator structure,
  /// window, and applicable predicates.
  std::string Signature() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.Signature() == b.Signature();
  }

  /// Extracts the subtree rooted at `op_idx` as a standalone query with the
  /// same window and exactly the predicates applicable to its types.
  Query Subquery(int op_idx) const;

  /// The singleton query for primitive type `t` (must be one of this
  /// query's primitive types), with applicable unary predicates.
  Query PrimitiveProjection(EventTypeId t) const;

  /// Low-level factory used by the projection algorithm and the parser.
  static Query FromParts(std::vector<QueryOp> ops, int root,
                         std::vector<Predicate> predicates, uint64_t window);

 private:
  std::string SubtreeSignature(int op_idx) const;
  std::string SubtreeString(int op_idx, const TypeRegistry* reg) const;
  friend struct QueryCombinator;  // query_builder.cc internals

  std::vector<QueryOp> ops_;
  int root_ = -1;
  std::vector<Predicate> predicates_;
  uint64_t window_ = kNoWindow;
};

}  // namespace muse

#endif  // MUSE_CEP_QUERY_H_
