#ifndef MUSE_CEP_MATCH_H_
#define MUSE_CEP_MATCH_H_

#include <string>
#include <vector>

#include "src/cep/event.h"
#include "src/cep/query.h"

namespace muse {

/// A match: a sequence of events, kept sorted by global-trace position
/// (`seq`), i.e. in trace order (§2.2). A primitive event is a singleton
/// match.
struct Match {
  std::vector<Event> events;

  static Match Single(const Event& e) { return Match{{e}}; }

  bool empty() const { return events.empty(); }
  uint64_t FirstSeq() const { return events.front().seq; }
  uint64_t LastSeq() const { return events.back().seq; }

  uint64_t MinTime() const;
  uint64_t MaxTime() const;

  /// The events of the given types, as a (seq-sorted) sub-match.
  Match Restrict(TypeSet types) const;

  /// Stable identity of a match (the sorted seq list); used for
  /// deduplication and for comparing match sets in tests.
  std::string Key() const;

  std::string ToString() const;

  friend bool operator==(const Match& a, const Match& b);
};

/// Merges two matches into their interleaving (sorted union of events).
/// Fails — returns false — if the merge is inconsistent: the two matches
/// contain *different* events of the same type. (Candidate matches of a
/// query have at most one event per type; when combination parts overlap in
/// a type, their matches must agree on that event, cf. §5.1.)
/// Events with equal `seq` are the same event and are deduplicated.
bool MergeIfConsistent(const Match& a, const Match& b, Match* out);

/// Checks whether `m` is structurally a match of `q` (§2.2), ignoring
/// NSEQ absence conditions (which require the trace context and are checked
/// by the evaluator against the negated child's match stream):
///  * exactly one event per positive primitive type of `q`, nothing else;
///  * SEQ children's event spans strictly ordered; NSEQ's first child's span
///    strictly before the last child's span;
///  * all applicable predicates hold;
///  * the window τ_q is respected.
bool StructurallyMatches(const Query& q, const Match& m);

/// True if some match of the negated pattern invalidates candidate `m`:
/// for NSEQ(o1, o2, o3), an `anti` match lying strictly between the span of
/// the o1 part of `m` and the span of the o3 part of `m` (§2.2).
/// `before_types`/`after_types` are the positive types of o1 and o3 in `m`.
bool AntiMatchInvalidates(const Match& m, TypeSet before_types,
                          TypeSet after_types, const Match& anti);

}  // namespace muse

#endif  // MUSE_CEP_MATCH_H_
