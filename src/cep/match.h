#ifndef MUSE_CEP_MATCH_H_
#define MUSE_CEP_MATCH_H_

#include <string>
#include <vector>

#include "src/cep/event.h"
#include "src/cep/query.h"

namespace muse {

/// A match: a sequence of events, kept sorted by global-trace position
/// (`seq`), i.e. in trace order (§2.2). A primitive event is a singleton
/// match.
struct Match {
  std::vector<Event> events;

  /// Cached time span over `events` (min/max of Event::time). Maintained by
  /// Single/MergeIfConsistent/Restrict so the evaluator's window checks are
  /// O(1) instead of O(k) scans per buffered candidate per join level; code
  /// that fills `events` directly (e.g. the wire decoder) must call
  /// RecomputeSpan() afterwards. Both 0 for an empty match.
  uint64_t min_time = 0;
  uint64_t max_time = 0;

  static Match Single(const Event& e) {
    Match m;
    m.events.push_back(e);
    m.min_time = e.time;
    m.max_time = e.time;
    return m;
  }

  bool empty() const { return events.empty(); }
  uint64_t FirstSeq() const { return events.front().seq; }
  uint64_t LastSeq() const { return events.back().seq; }

  uint64_t MinTime() const { return min_time; }
  uint64_t MaxTime() const { return max_time; }

  /// Restores the cached span after direct mutation of `events`.
  void RecomputeSpan();

  /// The events of the given types, as a (seq-sorted) sub-match.
  Match Restrict(TypeSet types) const;

  /// Stable identity of a match (the sorted seq list); used for
  /// comparing match sets in tests and for debug labels.
  std::string Key() const;

  /// 64-bit identity of a match: a seeded mix of the sorted seq list.
  /// Replaces Key() in the hot duplicate-suppression paths (simulator and
  /// rt sinks), where a string key per match dominates allocation. Equal
  /// matches always collide; distinct matches collide with probability
  /// ~n²/2⁶⁵ (birthday bound), far below anything a trace-scale dedup set
  /// can observe.
  uint64_t Fingerprint() const;

  std::string ToString() const;

  friend bool operator==(const Match& a, const Match& b);
};

/// Merges two matches into their interleaving (sorted union of events).
/// Fails — returns false — if the merge is inconsistent: the two matches
/// contain *different* events of the same type. (Candidate matches of a
/// query have at most one event per type; when combination parts overlap in
/// a type, their matches must agree on that event, cf. §5.1.)
/// Events with equal `seq` are the same event and are deduplicated.
bool MergeIfConsistent(const Match& a, const Match& b, Match* out);

/// Checks whether `m` is structurally a match of `q` (§2.2), ignoring
/// NSEQ absence conditions (which require the trace context and are checked
/// by the evaluator against the negated child's match stream):
///  * exactly one event per positive primitive type of `q`, nothing else;
///  * SEQ children's event spans strictly ordered; NSEQ's first child's span
///    strictly before the last child's span;
///  * all applicable predicates hold;
///  * the window τ_q is respected.
bool StructurallyMatches(const Query& q, const Match& m);

/// True if some match of the negated pattern invalidates candidate `m`:
/// for NSEQ(o1, o2, o3), an `anti` match lying strictly between the span of
/// the o1 part of `m` and the span of the o3 part of `m` (§2.2).
/// `before_types`/`after_types` are the positive types of o1 and o3 in `m`.
bool AntiMatchInvalidates(const Match& m, TypeSet before_types,
                          TypeSet after_types, const Match& anti);

}  // namespace muse

#endif  // MUSE_CEP_MATCH_H_
