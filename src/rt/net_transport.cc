#include "src/rt/net_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace muse::rt {
namespace {

/// kPacket envelope header bytes past the common (len, kind) prefix.
constexpr size_t kPacketEnvelopeBytes = 4 + 4 + 8 + 4;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  // Localhost latency test rigs die on Nagle; every frame is flushed
  // deliberately, so coalescing adds nothing.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

size_t EffectiveCapacity(const RtTransportOptions& options, NodeId node) {
  if (node < options.node_inbox_capacity.size() &&
      options.node_inbox_capacity[node] != 0) {
    return options.node_inbox_capacity[node];
  }
  return options.inbox_capacity;
}

}  // namespace

NetTransport::NetTransport(Setup setup, obs::MetricsRegistry* registry)
    : role_(setup.role),
      self_process_(setup.self_process),
      processes_(std::max(1, setup.processes)),
      options_(setup.options),
      callbacks_(std::move(setup.callbacks)) {
  MUSE_CHECK(setup.num_nodes > 0, "net transport needs at least one node");
  const size_t divisor =
      role_ == Role::kLoopback ? 1 : static_cast<size_t>(processes_) + 1;
  auto share_of = [&](size_t cap) {
    return cap == 0 ? 0 : std::max<size_t>(1, cap / divisor);
  };

  // The embedded in-proc transport holds the *local* sender domain's
  // share of each window; remote domains hold theirs in shares_ below.
  RtTransportOptions scaled = options_;
  scaled.inbox_capacity = share_of(scaled.inbox_capacity);
  for (size_t& cap : scaled.node_inbox_capacity) cap = share_of(cap);

  std::vector<int> shard_map;
  if (role_ == Role::kDaemon) {
    // Spread the strided local slice (node % P == self) evenly over the
    // worker shards by *local* index — the default global round-robin
    // would alias whenever num_shards shares a factor with P.
    shard_map.assign(setup.num_nodes, 0);
    int local_idx = 0;
    for (size_t n = 0; n < setup.num_nodes; ++n) {
      if (static_cast<int>(n % static_cast<size_t>(processes_)) ==
          self_process_) {
        shard_map[n] = local_idx++ % setup.num_shards;
      }
    }
  }
  embedded_ = std::make_unique<InProcTransport>(
      setup.num_nodes, setup.num_shards, scaled, registry,
      std::move(shard_map));

  shares_.resize(setup.num_nodes);
  for (size_t n = 0; n < setup.num_nodes; ++n) {
    const size_t share = share_of(EffectiveCapacity(options_, n));
    shares_[n].capacity = share;
    shares_[n].credits = share;
  }

  remote_stall_metric_ =
      registry->GetCounter("rt_remote_backpressure_stalls_total");
  source_stall_us_ = registry->GetCounter("rt_source_stall_us_total");
  stream_errors_ = registry->GetCounter("rt_wire_stream_errors_total");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  MUSE_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  MUSE_CHECK(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = UINT32_MAX;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  peers_.reserve(setup.peer_fds.size());
  for (size_t i = 0; i < setup.peer_fds.size(); ++i) {
    auto peer = std::make_unique<Peer>();
    peer->index = static_cast<int>(i);
    peer->fd = setup.peer_fds[i];
    const obs::LabelSet labels{{"peer", std::to_string(i)}};
    peer->tx_frames = registry->GetCounter("rt_link_tx_frames_total", labels);
    peer->tx_bytes = registry->GetCounter("rt_link_tx_bytes_total", labels);
    peer->rx_frames = registry->GetCounter("rt_link_rx_frames_total", labels);
    peer->rx_bytes = registry->GetCounter("rt_link_rx_bytes_total", labels);
    peer->tx_buffered =
        registry->GetGauge("rt_link_tx_buffered_bytes", labels);
    if (peer->fd >= 0) {
      SetNonBlocking(peer->fd);
      SetNoDelay(peer->fd);
      epoll_event pev{};
      pev.events = EPOLLIN;
      pev.data.u32 = static_cast<uint32_t>(i);
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, peer->fd, &pev);
    } else {
      peer->closed = true;  // the self slot of a daemon mesh
    }
    peers_.push_back(std::move(peer));
  }

  io_thread_ = std::thread([this] { IoMain(); });
}

NetTransport::~NetTransport() { Shutdown(); }

Result<std::unique_ptr<NetTransport>> NetTransport::Loopback(
    size_t num_nodes, int num_shards, const RtTransportOptions& options,
    obs::MetricsRegistry* registry) {
  const int lfd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (lfd < 0) return Error{"loopback: socket() failed"};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(lfd, 1) != 0) {
    close(lfd);
    return Error{"loopback: bind/listen failed"};
  }
  socklen_t alen = sizeof(addr);
  getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);
  const int out = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (out < 0) {
    close(lfd);
    return Error{"loopback: socket() failed"};
  }
  if (connect(out, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(lfd);
    close(out);
    return Error{"loopback: self-connect failed"};
  }
  const int in = accept(lfd, nullptr, nullptr);
  close(lfd);
  if (in < 0) {
    close(out);
    return Error{"loopback: accept failed"};
  }
  Setup setup;
  setup.role = Role::kLoopback;
  setup.processes = 1;
  setup.peer_fds = {out, in};
  setup.num_nodes = num_nodes;
  setup.num_shards = num_shards;
  setup.options = options;
  return std::make_unique<NetTransport>(std::move(setup), registry);
}

std::vector<NodeId> NetTransport::LocalNodes() const {
  if (role_ == Role::kLoopback) return embedded_->LocalNodes();
  std::vector<NodeId> nodes;
  if (role_ == Role::kCoordinator) return nodes;
  for (size_t n = 0; n < embedded_->num_nodes(); ++n) {
    if (static_cast<int>(n % static_cast<size_t>(processes_)) ==
        self_process_) {
      nodes.push_back(static_cast<NodeId>(n));
    }
  }
  return nodes;
}

bool NetTransport::IsLocal(NodeId node) const {
  switch (role_) {
    case Role::kLoopback:
      return true;
    case Role::kCoordinator:
      return false;
    case Role::kDaemon:
      return static_cast<int>(node % static_cast<size_t>(processes_)) ==
             self_process_;
  }
  return false;
}

int NetTransport::OwnerPeer(NodeId node) const {
  if (role_ == Role::kLoopback) return 0;  // the outbound half
  return static_cast<int>(node % static_cast<size_t>(processes_));
}

bool NetTransport::RouteViaSocket(NodeId src, NodeId dst) const {
  switch (role_) {
    case Role::kLoopback:
      // Same-node loopback stays in memory (it never was a network hop);
      // every cross-node packet takes the wire.
      return src != dst;
    case Role::kCoordinator:
      return true;
    case Role::kDaemon:
      return !IsLocal(dst);
  }
  return false;
}

uint64_t NetTransport::DeliverAt(NodeId src, NodeId dst) const {
  if (src == dst || options_.delivery_delay_us == 0) return NowUs();
  return NowUs() + options_.delivery_delay_us;
}

bool NetTransport::TryDeliver(Packet&& packet) {
  if (!RouteViaSocket(packet.src, packet.dst)) {
    return embedded_->TryDeliver(std::move(packet));
  }
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    CreditShare& share = shares_[packet.dst];
    if (share.capacity != 0 && share.credits < packet.frames) {
      remote_stalls_.fetch_add(1, std::memory_order_relaxed);
      remote_stall_metric_->Add(1);
      return false;
    }
    if (share.capacity != 0) share.credits -= packet.frames;
  }
  SendPacket(std::move(packet));
  return true;
}

void NetTransport::DeliverBlocking(Packet packet) {
  if (!RouteViaSocket(packet.src, packet.dst)) {
    embedded_->DeliverBlocking(std::move(packet));
    return;
  }
  {
    std::unique_lock<std::mutex> lock(credit_mu_);
    CreditShare& share = shares_[packet.dst];
    auto ready = [&] {
      return share.capacity == 0 || share.credits >= packet.frames ||
             wedged();
    };
    if (!ready()) {
      remote_stalls_.fetch_add(1, std::memory_order_relaxed);
      remote_stall_metric_->Add(1);
      const uint64_t stall_start = NowUs();
      if (options_.wedge_timeout_ms == 0) {
        credit_cv_.wait(lock, ready);
      } else if (!credit_cv_.wait_for(
                     lock,
                     std::chrono::milliseconds(options_.wedge_timeout_ms),
                     ready)) {
        source_stall_us_->Add(NowUs() - stall_start);
        lock.unlock();
        MarkWedged();
        NoteFramesDone(packet.frames);
        return;
      }
      source_stall_us_->Add(NowUs() - stall_start);
      if (wedged() &&
          !(share.capacity == 0 || share.credits >= packet.frames)) {
        lock.unlock();
        NoteFramesDone(packet.frames);
        return;
      }
    }
    if (share.capacity != 0) share.credits -= packet.frames;
  }
  SendPacket(std::move(packet));
}

void NetTransport::SendPacket(Packet&& packet) {
  MUSE_CHECK(
      packet.bytes.size() + kPacketEnvelopeBytes <= kMaxFramePayloadBytes,
      "net transport: packet envelope exceeds the max frame size — lower "
      "batch_max_frames");
  std::string frame;
  AppendPacketFrame(packet.src, packet.dst, packet.deliver_at_us,
                    packet.frames, packet.bytes, &frame);
  if (!SendFrameToPeer(OwnerPeer(packet.dst), frame)) {
    // Dead peer: these frames can never be processed. Settle the
    // in-flight accounting so the (wedged) run can unwind.
    NoteFramesDone(packet.frames);
  }
}

void NetTransport::PushControl(NodeId dst, ControlKind kind) {
  if (IsLocal(dst)) {
    embedded_->PushControl(dst, kind);
    return;
  }
  std::string frame;
  AppendControlFrame(dst, kind, &frame);
  SendFrameToPeer(OwnerPeer(dst), frame);
}

Transport::Popped NetTransport::PopReady(int shard, uint64_t max_wait_us) {
  return embedded_->PopReady(shard, max_wait_us);
}

void NetTransport::Release(const Packet& packet) {
  if (packet.via < 0) {
    embedded_->Release(packet);
    return;
  }
  // The credits were spent from the sending peer's share: return them as
  // an explicit grant; only the local depth gauge moves here.
  embedded_->ReleaseExempt(packet.dst, packet.frames);
  std::string frame;
  AppendCreditFrame(packet.dst, packet.frames, &frame);
  SendFrameToPeer(packet.via, frame);
}

uint64_t NetTransport::Stalls() const {
  return embedded_->Stalls() +
         remote_stalls_.load(std::memory_order_relaxed);
}

size_t NetTransport::CapacityOf(NodeId node) const {
  return EffectiveCapacity(options_, node);
}

std::pair<uint64_t, uint64_t> NetTransport::GlobalCounts() {
  if (role_ != Role::kCoordinator) return Transport::GlobalCounts();
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_pending_ = static_cast<int>(peers_.size());
    probe_q_ = 0;
    probe_d_ = 0;
  }
  std::string frame;
  AppendQuiesceFrame(/*is_reply=*/false, 0, 0, &frame);
  for (size_t p = 0; p < peers_.size(); ++p) {
    if (!SendFrameToPeer(static_cast<int>(p), frame)) {
      std::lock_guard<std::mutex> lock(probe_mu_);
      --probe_pending_;
    }
  }
  std::unique_lock<std::mutex> lock(probe_mu_);
  auto done = [&] { return probe_pending_ <= 0 || wedged(); };
  if (options_.wedge_timeout_ms == 0) {
    probe_cv_.wait(lock, done);
  } else if (!probe_cv_.wait_for(
                 lock, std::chrono::milliseconds(options_.wedge_timeout_ms),
                 done)) {
    lock.unlock();
    MarkWedged();
    return {1, 0};
  }
  if (probe_pending_ > 0) return {1, 0};  // wedged mid-probe
  return {QueuedTotal() + probe_q_, DoneTotal() + probe_d_};
}

bool NetTransport::SendFrameToPeer(int peer, const std::string& frame) {
  Peer& p = *peers_[static_cast<size_t>(peer)];
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(p.tx_mu);
    if (p.closed || p.fd < 0) return false;
    p.tx.append(frame);
    p.tx_frames->Add(1);
    p.tx_bytes->Add(frame.size());
    if (!FlushTxLocked(p)) fatal = true;
    p.tx_buffered->Set(static_cast<double>(p.tx.size()));
  }
  if (fatal) {
    PeerDied(peer, "send failed");
    return false;
  }
  return true;
}

bool NetTransport::SendToCoordinator(const std::string& frame) {
  MUSE_CHECK(role_ == Role::kDaemon, "SendToCoordinator: not a daemon");
  return SendFrameToPeer(processes_, frame);
}

bool NetTransport::FlushTxLocked(Peer& p) {
  while (!p.tx.empty()) {
    const ssize_t n =
        send(p.fd, p.tx.data(), p.tx.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      p.tx.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ArmTxLocked(p);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    p.closed = true;
    return false;
  }
  if (p.tx_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(p.index);
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
    p.tx_armed = false;
  }
  return true;
}

void NetTransport::ArmTxLocked(Peer& p) {
  if (p.tx_armed) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u32 = static_cast<uint32_t>(p.index);
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
  p.tx_armed = true;
}

void NetTransport::IoMain() {
  epoll_event events[16];
  while (!shutting_down_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 16, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u32 == UINT32_MAX) {
        uint64_t drain = 0;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const int peer = static_cast<int>(events[i].data.u32);
      Peer& p = *peers_[static_cast<size_t>(peer)];
      if (events[i].events & EPOLLOUT) {
        bool fatal = false;
        {
          std::lock_guard<std::mutex> lock(p.tx_mu);
          if (!p.closed && !FlushTxLocked(p)) fatal = true;
          p.tx_buffered->Set(static_cast<double>(p.tx.size()));
        }
        if (fatal) PeerDied(peer, "tx flush failed");
      }
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(peer);
      }
    }
  }
}

void NetTransport::HandleReadable(int peer) {
  Peer& p = *peers_[static_cast<size_t>(peer)];
  if (p.fd < 0) return;
  char buf[65536];
  for (;;) {
    const ssize_t r = recv(p.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r > 0) {
      p.rx_bytes->Add(static_cast<uint64_t>(r));
      p.rx.Feed(buf, static_cast<size_t>(r));
      std::string frame;
      while (p.rx.Next(&frame)) {
        p.rx_frames->Add(1);
        size_t consumed = 0;
        Result<NetFrame> nf = DecodeNetFrame(
            reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
            &consumed);
        if (!nf.ok()) {
          // A structurally valid prefix with a malformed body: the stream
          // framing may be fine but the peer is speaking garbage —
          // deterministic reject, connection unusable.
          stream_errors_->Add(1);
          PeerDied(peer, nf.error().message.c_str());
          return;
        }
        HandleNetFrame(peer, nf.value());
      }
      if (p.rx.poisoned()) {
        stream_errors_->Add(1);
        PeerDied(peer, p.rx.error().c_str());
        return;
      }
      continue;
    }
    if (r == 0) {
      // EOF. Clean only after the peer announced kBye (or we are tearing
      // the cluster down ourselves).
      if (!p.saw_bye.load(std::memory_order_acquire) &&
          !shutting_down_.load(std::memory_order_acquire)) {
        PeerDied(peer, "EOF before kBye");
      } else {
        std::lock_guard<std::mutex> lock(p.tx_mu);
        p.closed = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    PeerDied(peer, "recv failed");
    return;
  }
}

void NetTransport::HandleNetFrame(int peer, const NetFrame& nf) {
  // DecodeNetFrame checks structure only: a well-framed kPacket/kCredit/
  // kControl can still name a node outside the deployment. Indexing
  // shares_ / the embedded inboxes with it would be out-of-bounds (or a
  // process-killing CHECK), so treat it like any other protocol error:
  // deterministic reject, connection unusable.
  if ((nf.kind == FrameKind::kPacket || nf.kind == FrameKind::kCredit ||
       nf.kind == FrameKind::kControl) &&
      static_cast<size_t>(nf.dst) >= embedded_->num_nodes()) {
    stream_errors_->Add(1);
    PeerDied(peer, "frame dst out of range");
    return;
  }
  switch (nf.kind) {
    case FrameKind::kPacket: {
      Packet packet;
      packet.src = nf.src;
      packet.dst = nf.dst;
      packet.deliver_at_us = nf.deliver_at_us;
      packet.frames = nf.frames;
      packet.bytes = nf.inner;
      packet.via = peer;
      embedded_->DeliverExempt(std::move(packet));
      return;
    }
    case FrameKind::kCredit: {
      {
        std::lock_guard<std::mutex> lock(credit_mu_);
        CreditShare& share = shares_[nf.dst];
        share.credits =
            std::min(share.capacity, share.credits + nf.frames);
      }
      credit_cv_.notify_all();
      return;
    }
    case FrameKind::kControl:
      embedded_->PushControl(nf.dst, nf.op);
      return;
    case FrameKind::kAck:
      if (callbacks_.on_ack) callbacks_.on_ack(nf.op, nf.frames);
      return;
    case FrameKind::kQuiesce: {
      if (!nf.is_reply) {
        std::string reply;
        AppendQuiesceFrame(/*is_reply=*/true, QueuedTotal(), DoneTotal(),
                           &reply);
        SendFrameToPeer(peer, reply);
        return;
      }
      {
        std::lock_guard<std::mutex> lock(probe_mu_);
        probe_q_ += nf.queued_total;
        probe_d_ += nf.done_total;
        --probe_pending_;
      }
      probe_cv_.notify_all();
      return;
    }
    case FrameKind::kSinkMatch:
      if (callbacks_.on_sink_match) {
        callbacks_.on_sink_match(static_cast<int>(nf.query), nf.match,
                                 nf.trace.trace_id);
      }
      NoteFramesDone(1);  // the daemon queued it before shipping
      return;
    case FrameKind::kStats:
      if (callbacks_.on_stats) callbacks_.on_stats(nf.stats);
      return;
    case FrameKind::kSpan: {
      if (callbacks_.on_span) {
        obs::TraceSpan span;
        span.trace_id = nf.span_trace_id;
        span.kind = static_cast<obs::SpanKind>(nf.span_kind);
        span.node = nf.span_node;
        span.task = nf.span_task;
        span.peer = nf.span_peer;
        span.query = nf.span_query;
        span.start_us = nf.span_start_us;
        span.dur_us = nf.span_dur_us;
        callbacks_.on_span(span);
      }
      return;
    }
    case FrameKind::kBye: {
      peers_[peer]->saw_bye.store(true, std::memory_order_release);
      byes_.fetch_add(1, std::memory_order_acq_rel);
      if (callbacks_.on_bye) callbacks_.on_bye(peer);
      return;
    }
    default:
      // Handshake frames (kHello/kPeers/kReady) are consumed before the
      // transport exists; a raw data-plane frame outside a kPacket is a
      // protocol violation. Count and drop.
      stream_errors_->Add(1);
      return;
  }
}

void NetTransport::PeerDied(int peer, const char* why) {
  Peer& p = *peers_[static_cast<size_t>(peer)];
  bool expected = false;
  if (!p.dead.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(p.tx_mu);
    p.closed = true;
  }
  if (shutting_down_.load(std::memory_order_acquire) ||
      p.saw_bye.load(std::memory_order_acquire)) {
    return;
  }
  std::fprintf(stderr,
               "muse-rt transport (process %d): peer %d died: %s\n",
               role_ == Role::kDaemon ? self_process_ : -1, peer, why);
  MarkWedged();
  if (callbacks_.on_peer_dead) callbacks_.on_peer_dead(peer);
}

void NetTransport::WakeAllForWedge() {
  embedded_->MarkWedged();
  credit_cv_.notify_all();
  probe_cv_.notify_all();
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t r = write(wake_fd_, &one, sizeof(one));
  }
}

bool NetTransport::FlushPending(uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool drained = true;
    for (auto& peer : peers_) {
      std::lock_guard<std::mutex> lock(peer->tx_mu);
      if (!peer->closed && !peer->tx.empty()) drained = false;
    }
    if (drained) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void NetTransport::Shutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t r = write(wake_fd_, &one, sizeof(one));
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& peer : peers_) {
    std::lock_guard<std::mutex> lock(peer->tx_mu);
    if (peer->fd >= 0) {
      close(peer->fd);
      peer->fd = -1;
    }
    peer->closed = true;
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

}  // namespace muse::rt
