#ifndef MUSE_RT_WIRE_H_
#define MUSE_RT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/message.h"

namespace muse::rt {

/// Binary wire format of the muse-rt runtime: a packet is a concatenation
/// of length-prefixed frames, each carrying either one source event or one
/// inter-task message (SimMessage). All integers are little-endian and
/// fixed width, so an encoded frame round-trips bit-exactly across
/// encode/decode and its size is a pure function of the payload.
///
/// Frame layout:
///   u32  payload_len            bytes that follow (kind byte + body)
///   u8   kind                   FrameKind
///   body
///
/// Event body (kEvent, 40 bytes):
///   u32 type, u32 origin, u64 seq, u64 time, i64 attrs[kNumAttrs]
///
/// Message body (kMessage, 20 + 40*n bytes):
///   i32 src_task, i32 dst_task, u64 channel_seq, u32 num_events,
///   followed by num_events event bodies (the payload match, seq-sorted)
///
/// Traced variants (kEventTraced, kMessageTraced — muse-trace) carry a
/// 16-byte trace context between the kind byte and the body:
///   u64 trace_id, u64 sent_us
///
/// Version gate: the traced kinds are NEW frame kinds (3, 4), not new
/// fields in the v1 kinds — untraced frames encode byte-identically to
/// the pre-trace format, so decoders predating muse-trace still accept
/// every untraced stream, and reject traced frames explicitly as unknown
/// kinds instead of misparsing them. Encoders emit a traced kind only
/// when trace_id != 0.
///
/// The decoder is total: truncated buffers, oversized length prefixes,
/// unknown kinds, and inconsistent body sizes are reported as errors —
/// never reads out of bounds, never crashes (fuzzed by rt_wire_test).

/// Hard cap on one frame's payload length; anything larger is rejected
/// before allocation, so a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

enum class FrameKind : uint8_t {
  kEvent = 1,    ///< a source event injected at its origin node
  kMessage = 2,  ///< an inter-task match message (SimMessage)
  /// v2: same bodies prefixed by a TraceContext. Separate kinds rather
  /// than extra fields so v1 decoders keep working (see file comment).
  kEventTraced = 3,
  kMessageTraced = 4,
};

/// Optional causal-trace context (obs/trace.h): the 64-bit id the sampler
/// assigned to the source event at the root of this frame's causal chain,
/// and the sender's transport-clock timestamp at encode time (receivers
/// derive the hop latency from it — one process-wide clock, see
/// Transport::NowUs). trace_id 0 means "untraced".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t sent_us = 0;
  bool traced() const { return trace_id != 0; }
};

/// Bytes a TraceContext adds to a traced frame's payload.
inline constexpr size_t kTraceContextBytes = 8 + 8;

/// One decoded frame; exactly the member named by `kind` is meaningful.
/// `trace` is zero for untraced (v1) frames.
struct DecodedFrame {
  FrameKind kind = FrameKind::kEvent;
  Event event;
  SimMessage message;
  TraceContext trace;
};

/// Appends the encoded frame to `out`. The TraceContext overloads emit a
/// v1 frame when the context is untraced — tracing disabled is
/// byte-identical to the pre-trace wire format.
void AppendEventFrame(const Event& e, std::string* out);
void AppendMessageFrame(const SimMessage& m, std::string* out);
void AppendEventFrame(const Event& e, const TraceContext& trace,
                      std::string* out);
void AppendMessageFrame(const SimMessage& m, const TraceContext& trace,
                        std::string* out);

/// Encoded sizes including the length prefix (the runtime's byte
/// accounting and the link batcher's flush thresholds use these). Sizes
/// are for untraced frames; a traced frame adds kTraceContextBytes.
size_t EventFrameBytes();
size_t MessageFrameBytes(const Match& payload);

/// Decodes the first frame of `data[0, size)`. On success, `*consumed` is
/// the total frame size (prefix included) so callers can iterate a packet.
Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size,
                                 size_t* consumed);

/// Decodes a whole packet buffer into frames; errors if any frame is
/// malformed or trailing bytes remain.
Result<std::vector<DecodedFrame>> DecodePacket(const std::string& bytes);

}  // namespace muse::rt

#endif  // MUSE_RT_WIRE_H_
