#ifndef MUSE_RT_WIRE_H_
#define MUSE_RT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/message.h"

namespace muse::rt {

/// Binary wire format of the muse-rt runtime: a packet is a concatenation
/// of length-prefixed frames, each carrying either one source event or one
/// inter-task message (SimMessage). All integers are little-endian and
/// fixed width, so an encoded frame round-trips bit-exactly across
/// encode/decode and its size is a pure function of the payload.
///
/// Frame layout:
///   u32  payload_len            bytes that follow (kind byte + body)
///   u8   kind                   FrameKind
///   body
///
/// Event body (kEvent, 40 bytes):
///   u32 type, u32 origin, u64 seq, u64 time, i64 attrs[kNumAttrs]
///
/// Message body (kMessage, 20 + 40*n bytes):
///   i32 src_task, i32 dst_task, u64 channel_seq, u32 num_events,
///   followed by num_events event bodies (the payload match, seq-sorted)
///
/// Traced variants (kEventTraced, kMessageTraced — muse-trace) carry a
/// 16-byte trace context between the kind byte and the body:
///   u64 trace_id, u64 sent_us
///
/// Version gate: the traced kinds are NEW frame kinds (3, 4), not new
/// fields in the v1 kinds — untraced frames encode byte-identically to
/// the pre-trace format, so decoders predating muse-trace still accept
/// every untraced stream, and reject traced frames explicitly as unknown
/// kinds instead of misparsing them. Encoders emit a traced kind only
/// when trace_id != 0.
///
/// muse-net (v3) adds the socket control plane as further NEW kinds (5+),
/// so the data-plane decoder (DecodeFrame/DecodePacket, which workers run
/// on inbox packets) still rejects them explicitly — control frames only
/// ever appear on peer TCP streams, decoded by DecodeNetFrame:
///
///   kPacket     u32 src, u32 dst, u64 deliver_at_us, u32 frames,
///               then `frames` concatenated data-plane frames (the
///               in-proc Packet, enveloped for one (src, dst) link)
///   kCredit     u32 node, u32 frames       receiver returns inbox credits
///   kControl    u32 node, u8 op            ControlKind across the socket
///   kAck        u8 op, u32 count           flush-barrier acknowledgements
///   kQuiesce    u8 is_reply, u64 queued_total, u64 done_total
///   kSinkMatch  u32 query, u64 trace_id, u64 sent_us, u32 n, n events
///   kHello      u32 process, u32 listen_port
///   kPeers      u64 coord_now_us, u32 count,
///               count × (u32 listen_port, u8 host_len, host_len bytes)
///               (host_len 0 means the default host, 127.0.0.1)
///   kReady      u32 process
///   kStats      u32 count, count × (u8 stat, u32 index, u64 value)
///   kSpan       u64 trace_id, u8 span_kind, u32 node, i32 task,
///               u32 peer, i32 query, u64 start_us, u64 dur_us
///   kBye        u8 code
///
/// muse-adapt (v4) adds the live-migration control plane, again as NEW
/// kinds so every earlier decoder rejects them explicitly:
///
///   kMigrate    u64 migration_id, u64 barrier_ms, u64 horizon_ms,
///               u32 chunks            announces one migration's state
///                                     snapshot: `chunks` kStateChunk
///                                     frames with this id follow
///   kStateChunk u64 migration_id, u32 node, u32 count, count × event
///               bodies                one node's slice of the replayable
///                                     source-event state
///
/// The decoder is total: truncated buffers, oversized length prefixes,
/// unknown kinds, and inconsistent body sizes are reported as errors —
/// never reads out of bounds, never crashes (fuzzed by rt_wire_test).

/// Hard cap on one frame's payload length; anything larger is rejected
/// before allocation, so a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

enum class FrameKind : uint8_t {
  kEvent = 1,    ///< a source event injected at its origin node
  kMessage = 2,  ///< an inter-task match message (SimMessage)
  /// v2: same bodies prefixed by a TraceContext. Separate kinds rather
  /// than extra fields so v1 decoders keep working (see file comment).
  kEventTraced = 3,
  kMessageTraced = 4,
  /// v3 (muse-net): socket control plane. Never valid inside an inbox
  /// packet — DecodeFrame rejects them; only DecodeNetFrame accepts.
  kPacket = 5,     ///< enveloped data packet for one (src, dst) link
  kCredit = 6,     ///< inbox credits returned to a sending peer
  kControl = 7,    ///< a ControlKind for one node, crossing a process
  kAck = 8,        ///< flush-barrier acknowledgement (op, node count)
  kQuiesce = 9,    ///< cumulative in-flight counters (probe or reply)
  kSinkMatch = 10, ///< a sink-emitted match shipped to the coordinator
  kHello = 11,     ///< daemon handshake: process id + own listen port
  kPeers = 12,     ///< coordinator broadcast: clock ref + daemon ports
  kReady = 13,     ///< daemon is connected to all peers
  kStats = 14,     ///< end-of-run counter dump from a daemon
  kSpan = 15,      ///< one causal-trace span shipped at end of run
  kBye = 16,       ///< clean shutdown marker (EOF after it is expected)
  /// v4 (muse-adapt): live plan migration. Control-plane only — the
  /// data-plane decoder rejects them like every other kind >= 5.
  kMigrate = 17,     ///< migration header: id, barrier, horizon, chunks
  kStateChunk = 18,  ///< one node's replayable source-event state slice
};

/// Out-of-band signals delivered through a node's inbox alongside packets
/// (in-proc) or as kControl frames (across sockets). Control delivery
/// ignores credits — rare, coordinator- or driver-paced.
enum class ControlKind : uint8_t {
  kCrash,         ///< fail the node: drop volatile state, replay the log
  kFlushCollect,  ///< stage 1 of the final flush barrier: stash outputs
  kFlushEmit,     ///< stage 2: route the stashed outputs
  kStop,          ///< terminate the worker loop
};

/// Optional causal-trace context (obs/trace.h): the 64-bit id the sampler
/// assigned to the source event at the root of this frame's causal chain,
/// and the sender's transport-clock timestamp at encode time (receivers
/// derive the hop latency from it — one process-wide clock, see
/// Transport::NowUs). trace_id 0 means "untraced".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t sent_us = 0;
  bool traced() const { return trace_id != 0; }
};

/// Bytes a TraceContext adds to a traced frame's payload.
inline constexpr size_t kTraceContextBytes = 8 + 8;

/// One decoded frame; exactly the member named by `kind` is meaningful.
/// `trace` is zero for untraced (v1) frames.
struct DecodedFrame {
  FrameKind kind = FrameKind::kEvent;
  Event event;
  SimMessage message;
  TraceContext trace;
};

/// Appends the encoded frame to `out`. The TraceContext overloads emit a
/// v1 frame when the context is untraced — tracing disabled is
/// byte-identical to the pre-trace wire format.
void AppendEventFrame(const Event& e, std::string* out);
void AppendMessageFrame(const SimMessage& m, std::string* out);
void AppendEventFrame(const Event& e, const TraceContext& trace,
                      std::string* out);
void AppendMessageFrame(const SimMessage& m, const TraceContext& trace,
                        std::string* out);

/// Encoded sizes including the length prefix (the runtime's byte
/// accounting and the link batcher's flush thresholds use these). Sizes
/// are for untraced frames; a traced frame adds kTraceContextBytes.
size_t EventFrameBytes();
size_t MessageFrameBytes(const Match& payload);

/// Decodes the first frame of `data[0, size)`. On success, `*consumed` is
/// the total frame size (prefix included) so callers can iterate a packet.
Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size,
                                 size_t* consumed);

/// Decodes a whole packet buffer into frames; errors if any frame is
/// malformed or trailing bytes remain.
Result<std::vector<DecodedFrame>> DecodePacket(const std::string& bytes);

// --- muse-net control plane (v3 kinds) ------------------------------------

/// One end-of-run counter shipped in a kStats frame: `stat` names the
/// counter family (NetStat), `index` the node/peer/query label, `value`
/// the count.
struct StatEntry {
  uint8_t stat = 0;
  uint32_t index = 0;
  uint64_t value = 0;
};

/// Stat ids carried by kStats frames (daemon -> coordinator aggregation).
enum class NetStat : uint8_t {
  kNodeInputs = 1,        ///< index = node
  kNodeNetFrames = 2,     ///< index = node
  kNodeNetBytes = 3,      ///< index = node
  kNodeCrashes = 4,       ///< index = node
  kNodeDupsDropped = 5,   ///< index = node
  kNodePeakBuffered = 6,  ///< index = node
  kStalls = 7,            ///< index = 0 (process total)
  kWireRejects = 8,       ///< index = 0 (process total)
  kLinkTxFrames = 9,      ///< index = peer process
  kLinkTxBytes = 10,      ///< index = peer process
  kLinkRxFrames = 11,     ///< index = peer process
  kLinkRxBytes = 12,      ///< index = peer process
};

/// One decoded muse-net frame; the members named by `kind` are meaningful.
/// Data-plane kinds (kEvent..kMessageTraced) land in `frame`.
struct NetFrame {
  FrameKind kind = FrameKind::kEvent;
  DecodedFrame frame;  ///< data-plane kinds, decoded via DecodeFrame

  // kPacket: the enveloped link packet.
  uint32_t src = 0;
  uint32_t dst = 0;           ///< also kCredit/kControl node
  uint64_t deliver_at_us = 0;
  uint32_t frames = 0;        ///< also kCredit frames, kAck count
  std::string inner;          ///< concatenated data-plane frames

  ControlKind op = ControlKind::kCrash;  ///< kControl / kAck
  uint8_t is_reply = 0;                  ///< kQuiesce
  uint64_t queued_total = 0;             ///< kQuiesce
  uint64_t done_total = 0;               ///< kQuiesce

  uint32_t query = 0;   ///< kSinkMatch
  Match match;          ///< kSinkMatch payload
  TraceContext trace;   ///< kSinkMatch context

  uint32_t process = 0;      ///< kHello / kReady
  uint32_t listen_port = 0;  ///< kHello
  uint64_t coord_now_us = 0;           ///< kPeers clock reference
  std::vector<uint32_t> peer_ports;    ///< kPeers
  /// kPeers: host per peer, parallel to peer_ports. An empty string is
  /// the wire encoding of the default host (127.0.0.1) — consumers must
  /// treat the two identically.
  std::vector<std::string> peer_hosts;

  std::vector<StatEntry> stats;  ///< kStats

  // kMigrate / kStateChunk (muse-adapt v4).
  uint64_t migration_id = 0;       ///< both kinds
  uint64_t barrier_ms = 0;         ///< kMigrate: trace-time quiesce point
  uint64_t horizon_ms = 0;         ///< kMigrate: replay horizon H
  uint32_t state_chunks = 0;       ///< kMigrate: kStateChunk frames to come
  uint32_t state_node = 0;         ///< kStateChunk: owning node
  std::vector<Event> state_events; ///< kStateChunk payload (seq order)

  // kSpan (raw obs::TraceSpan fields; obs is not a wire dependency).
  uint64_t span_trace_id = 0;
  uint8_t span_kind = 0;
  uint32_t span_node = 0;
  int32_t span_task = -1;
  uint32_t span_peer = 0;
  int32_t span_query = -1;
  uint64_t span_start_us = 0;
  uint64_t span_dur_us = 0;

  uint8_t bye_code = 0;  ///< kBye
};

void AppendPacketFrame(uint32_t src, uint32_t dst, uint64_t deliver_at_us,
                       uint32_t frames, const std::string& inner,
                       std::string* out);
void AppendCreditFrame(uint32_t node, uint32_t frames, std::string* out);
void AppendControlFrame(uint32_t node, ControlKind op, std::string* out);
void AppendAckFrame(ControlKind op, uint32_t count, std::string* out);
void AppendQuiesceFrame(bool is_reply, uint64_t queued_total,
                        uint64_t done_total, std::string* out);
void AppendSinkMatchFrame(uint32_t query, const Match& match,
                          const TraceContext& trace, std::string* out);
void AppendHelloFrame(uint32_t process, uint32_t listen_port,
                      std::string* out);
/// `hosts`, when non-empty, must be parallel to `ports`; each entry longer
/// than 255 bytes is truncated (the length rides a u8). An empty vector —
/// or an empty entry — encodes the default host (127.0.0.1) as host_len 0.
void AppendPeersFrame(uint64_t coord_now_us,
                      const std::vector<uint32_t>& ports,
                      const std::vector<std::string>& hosts,
                      std::string* out);
void AppendReadyFrame(uint32_t process, std::string* out);
void AppendStatsFrame(const std::vector<StatEntry>& stats, std::string* out);
void AppendSpanFrame(uint64_t trace_id, uint8_t span_kind, uint32_t node,
                     int32_t task, uint32_t peer, int32_t query,
                     uint64_t start_us, uint64_t dur_us, std::string* out);
void AppendByeFrame(uint8_t code, std::string* out);
void AppendMigrateFrame(uint64_t migration_id, uint64_t barrier_ms,
                        uint64_t horizon_ms, uint32_t chunks,
                        std::string* out);
void AppendStateChunkFrame(uint64_t migration_id, uint32_t node,
                           const std::vector<Event>& events,
                           std::string* out);

/// Max events one kStateChunk frame may carry while staying under
/// kMaxFramePayloadBytes (state_transfer chunks snapshots with it).
size_t MaxStateChunkEvents();

/// Decodes the first frame of `data[0, size)` accepting every kind —
/// data-plane and control-plane. Same totality guarantees as DecodeFrame.
Result<NetFrame> DecodeNetFrame(const uint8_t* data, size_t size,
                                size_t* consumed);

/// Incremental reassembly of length-prefixed frames from a TCP byte
/// stream: `Feed` appends whatever the socket produced, `Next` extracts
/// complete frames one at a time, byte-identical to what the sender
/// encoded, no matter how the stream was segmented (pinned exhaustively
/// by rt_wire_test's split-at-every-boundary cases).
///
/// Garbage policy: a length-prefixed stream cannot resync after losing
/// framing (any byte could be payload), so the first structurally
/// invalid prefix — payload_len 0 or above kMaxFramePayloadBytes —
/// poisons the assembler deterministically: Next returns false forever
/// and the connection must be torn down. Malformed frame *bodies* pass
/// through (the assembler checks framing only) and are rejected by
/// DecodeNetFrame, which callers must treat as equally fatal.
class FrameAssembler {
 public:
  /// Appends `n` raw stream bytes. No-op once poisoned.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame (length prefix included) into
  /// `*frame`. False when more bytes are needed or the stream is
  /// poisoned — check poisoned() to distinguish.
  bool Next(std::string* frame);

  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }
  uint64_t frames_out() const { return frames_out_; }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
  bool poisoned_ = false;
  std::string error_;
  uint64_t frames_out_ = 0;
};

}  // namespace muse::rt

#endif  // MUSE_RT_WIRE_H_
