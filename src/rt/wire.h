#ifndef MUSE_RT_WIRE_H_
#define MUSE_RT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/message.h"

namespace muse::rt {

/// Binary wire format of the muse-rt runtime: a packet is a concatenation
/// of length-prefixed frames, each carrying either one source event or one
/// inter-task message (SimMessage). All integers are little-endian and
/// fixed width, so an encoded frame round-trips bit-exactly across
/// encode/decode and its size is a pure function of the payload.
///
/// Frame layout:
///   u32  payload_len            bytes that follow (kind byte + body)
///   u8   kind                   FrameKind
///   body
///
/// Event body (kEvent, 40 bytes):
///   u32 type, u32 origin, u64 seq, u64 time, i64 attrs[kNumAttrs]
///
/// Message body (kMessage, 20 + 40*n bytes):
///   i32 src_task, i32 dst_task, u64 channel_seq, u32 num_events,
///   followed by num_events event bodies (the payload match, seq-sorted)
///
/// The decoder is total: truncated buffers, oversized length prefixes,
/// unknown kinds, and inconsistent body sizes are reported as errors —
/// never reads out of bounds, never crashes (fuzzed by rt_wire_test).

/// Hard cap on one frame's payload length; anything larger is rejected
/// before allocation, so a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

enum class FrameKind : uint8_t {
  kEvent = 1,    ///< a source event injected at its origin node
  kMessage = 2,  ///< an inter-task match message (SimMessage)
};

/// One decoded frame; exactly the member named by `kind` is meaningful.
struct DecodedFrame {
  FrameKind kind = FrameKind::kEvent;
  Event event;
  SimMessage message;
};

/// Appends the encoded frame to `out`.
void AppendEventFrame(const Event& e, std::string* out);
void AppendMessageFrame(const SimMessage& m, std::string* out);

/// Encoded sizes including the length prefix (the runtime's byte
/// accounting and the link batcher's flush thresholds use these).
size_t EventFrameBytes();
size_t MessageFrameBytes(const Match& payload);

/// Decodes the first frame of `data[0, size)`. On success, `*consumed` is
/// the total frame size (prefix included) so callers can iterate a packet.
Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size,
                                 size_t* consumed);

/// Decodes a whole packet buffer into frames; errors if any frame is
/// malformed or trailing bytes remain.
Result<std::vector<DecodedFrame>> DecodePacket(const std::string& bytes);

}  // namespace muse::rt

#endif  // MUSE_RT_WIRE_H_
