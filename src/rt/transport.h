#ifndef MUSE_RT_TRANSPORT_H_
#define MUSE_RT_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/cep/event.h"
#include "src/obs/metrics.h"
#include "src/rt/wire.h"

namespace muse::rt {

/// Channel model of the runtime transports (runtime.h ties it to the
/// worker threads). Every network node owns one bounded MPSC inbox;
/// senders coalesce frames into per-link packets (batching), consume inbox
/// credits per frame (credit-based backpressure), and packets become
/// visible to the receiver only after a configurable delivery delay.
struct RtTransportOptions {
  /// Inbox capacity in *frames* (not packets): the credit window granted
  /// to the senders of one node. 0 means unbounded — muse_lint's M800 rule
  /// rejects such configs, since nothing then stops a fast producer from
  /// exhausting memory.
  size_t inbox_capacity = 1024;

  /// Per-node overrides of `inbox_capacity` for heterogeneous deployments
  /// (e.g. a constrained edge node next to beefy aggregators). Entry n, if
  /// present and nonzero, replaces `inbox_capacity` for node n; missing or
  /// zero entries inherit the global value. The static analyzer's M900 rule
  /// checks every deployed link's max batch against the *destination's*
  /// effective window, since a single undersized node wedges the whole
  /// graph.
  std::vector<size_t> node_inbox_capacity;

  /// Max frames coalesced into one packet per link before it is flushed.
  /// Batching amortizes per-packet queue and wake-up costs; latency is
  /// bounded because workers flush all open batches after every processed
  /// packet. Must not exceed `inbox_capacity` (muse_lint M801): a packet
  /// larger than the credit window could never be delivered.
  int batch_max_frames = 32;

  /// Drain runs of consecutive untraced event frames within each delivered
  /// packet into a columnar EventBatch and evaluate them through the
  /// muse-batch predicate kernels instead of frame-at-a-time. Semantics-
  /// preserving: deliveries, durable-log entries, and channel sequence
  /// numbers are generated in exactly the scalar order, so crash replay
  /// and the exactly-once filters behave identically; traced frames always
  /// take the scalar path so their spans and trace propagation survive.
  /// Off is the differential reference mode.
  bool batch_inbox = true;

  /// One-way delivery delay applied to cross-node packets, in wall-clock
  /// microseconds (the rt analogue of SimOptions::network_delay_ms).
  /// Same-node loopback packets are delivered immediately.
  uint64_t delivery_delay_us = 0;

  /// Wedge watchdog: if a blocking send waits longer than this for credits
  /// (or quiescence sees no in-flight progress for this long), the
  /// transport declares itself wedged and the run aborts instead of
  /// hanging. 0 — the default — waits forever, which is correct for every
  /// config muse_lint --prove certifies; tests use a small timeout to turn
  /// a would-be deadlock into a checkable RtReport::wedged.
  uint64_t wedge_timeout_ms = 0;
};

/// One batch of encoded frames in flight on a (src, dst) link. `via` is
/// the index of the peer process the packet physically arrived from, or
/// -1 for packets that never crossed a socket — Release() uses it to
/// return credits to the right owner.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t deliver_at_us = 0;  ///< transport-clock due time
  uint32_t frames = 0;         ///< credit cost (frame count)
  std::string bytes;           ///< concatenated wire frames (wire.h)
  int via = -1;                ///< receiving peer index, -1 = local origin
};

/// The pluggable transport seam between the runtime's workers/driver and
/// whatever carries the frames: `InProcTransport` (below) keeps
/// everything in shared-memory inboxes; `NetTransport` (net_transport.h)
/// moves cross-node packets over loopback TCP sockets — in one process or
/// across a muse_node cluster — behind the identical contract.
///
/// Flow control contract (deadlock freedom): `TryDeliver` never blocks —
/// worker threads that fail to acquire credits keep the packet in a local
/// spill queue and continue draining their own inbox, so every full inbox
/// always has a consumer making progress. Only the source driver (which
/// consumes nothing) uses the blocking `DeliverBlocking`, making end-to-end
/// backpressure land on event admission, as in credit-based streaming
/// systems.
///
/// Quiescence accounting is cumulative (queued_total / done_total
/// monotone counters, not one net gauge) so that a cluster coordinator
/// can sum per-process snapshots: the global system is quiescent exactly
/// when the sums are equal and stable across two probes.
class Transport {
 public:
  Transport() : epoch_(std::chrono::steady_clock::now()) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Total nodes of the deployment (not just the locally-owned subset).
  virtual size_t num_nodes() const = 0;
  /// Worker shards this process runs (covering the local nodes only).
  virtual int num_shards() const = 0;
  /// Shard servicing `node`; only meaningful for local nodes.
  virtual int shard_of(NodeId node) const = 0;
  /// The nodes whose inboxes live in this process, ascending.
  virtual std::vector<NodeId> LocalNodes() const = 0;

  /// Microseconds since the transport epoch (the rt wall clock). In a
  /// cluster every process syncs its epoch to the coordinator's clock
  /// (SyncClock), so timestamps riding frames stay comparable.
  uint64_t NowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Re-anchors NowUs so it currently reads `now_us` (clock handshake:
  /// daemons adopt the coordinator's clock, localhost half-RTT error).
  void SyncClock(uint64_t now_us) {
    epoch_ = std::chrono::steady_clock::now() -
             std::chrono::microseconds(now_us);
  }

  /// Computes the due time of a packet flushed now on src -> dst.
  virtual uint64_t DeliverAt(NodeId src, NodeId dst) const = 0;

  /// Non-blocking delivery: false when the destination lacks
  /// `packet.frames` credits (a backpressure stall, counted per dst node).
  /// Consumes `packet` only on success — on failure the caller's packet is
  /// untouched and can be retried (the spill queues depend on this).
  virtual bool TryDeliver(Packet&& packet) = 0;

  /// Blocking delivery for the source driver: waits for credits, counting
  /// the stalled wall time in rt_source_stall_us_total.
  virtual void DeliverBlocking(Packet packet) = 0;

  /// Delivers a control signal (credit-exempt, wakes the owning shard —
  /// possibly in another process).
  virtual void PushControl(NodeId dst, ControlKind kind) = 0;

  /// Everything a shard worker drained in one wait cycle. Controls are
  /// surfaced before packets; the runtime's phase protocol guarantees no
  /// packet/control ordering hazard (barriers run only at quiescence).
  struct Popped {
    std::vector<std::pair<NodeId, ControlKind>> controls;
    std::vector<Packet> packets;
    bool empty() const { return controls.empty() && packets.empty(); }
  };

  /// Pops all due packets and controls of `shard`'s inboxes, waiting up to
  /// `max_wait_us` for something to become due (delivery delays wake the
  /// shard exactly when the earliest packet matures).
  virtual Popped PopReady(int shard, uint64_t max_wait_us) = 0;

  /// Returns `packet.frames` credits once the receiver finished processing
  /// a popped packet; wakes blocked senders. Packets that arrived over a
  /// socket (`packet.via >= 0`) have their credits granted back to the
  /// sending peer as a kCredit frame.
  virtual void Release(const Packet& packet) = 0;

  /// In-flight frame accounting for quiescence detection: queued when a
  /// frame enters a link batch, done after the receiver processed it (and
  /// enqueued any outputs, keeping the counter conservative). Cumulative
  /// so cluster-wide sums are meaningful (see class comment).
  void NoteFramesQueued(int64_t n) {
    queued_total_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_seq_cst);
  }
  void NoteFramesDone(int64_t n) {
    done_total_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_seq_cst);
  }
  uint64_t QueuedTotal() const {
    return queued_total_.load(std::memory_order_seq_cst);
  }
  uint64_t DoneTotal() const {
    return done_total_.load(std::memory_order_seq_cst);
  }
  int64_t InFlight() const {
    return static_cast<int64_t>(QueuedTotal()) -
           static_cast<int64_t>(DoneTotal());
  }

  /// Snapshot of the cumulative (queued, done) pair over the *whole
  /// system*: this process alone by default; a cluster coordinator
  /// overrides it to probe every daemon and sum. The pair is only
  /// meaningful for quiescence when read twice: per-process counters are
  /// sampled at different instants, so a single probe can be inconsistent
  /// — the runtime declares quiescence only after two consecutive probes
  /// agree (queued == done, unchanged between probes).
  virtual std::pair<uint64_t, uint64_t> GlobalCounts() {
    return {QueuedTotal(), DoneTotal()};
  }

  /// Total backpressure stalls (failed credit acquisitions) so far.
  virtual uint64_t Stalls() const = 0;

  /// Effective credit window of `node`'s inbox in frames (0 = unbounded):
  /// the per-node override when set, else the global `inbox_capacity`.
  virtual size_t CapacityOf(NodeId node) const = 0;

  /// Declares the transport permanently stuck (an undeliverable packet or
  /// a dead peer). Wakes every blocked sender so the run can unwind
  /// instead of hanging.
  void MarkWedged() {
    wedged_.store(true, std::memory_order_release);
    WakeAllForWedge();
  }
  /// Virtual so a layered transport (NetTransport embeds an
  /// InProcTransport for local delivery) can report wedged when either
  /// layer is.
  virtual bool wedged() const {
    return wedged_.load(std::memory_order_acquire);
  }

 protected:
  /// Wakes every waiter (shard cvs, credit cvs, IO threads) after the
  /// wedged flag is set.
  virtual void WakeAllForWedge() = 0;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> queued_total_{0};
  std::atomic<uint64_t> done_total_{0};
  std::atomic<bool> wedged_{false};
};

/// The original in-process transport: per-node bounded inboxes grouped
/// into shards (one worker thread services one shard; runtime.cc assigns
/// nodes round-robin). Push/pop of one shard's inboxes share a shard
/// mutex; all telemetry updates are lock-free registry pointers.
class InProcTransport : public Transport {
 public:
  /// `shard_map`, when non-empty, assigns inbox n to worker shard
  /// shard_map[n] (each entry in [0, num_shards)); empty defaults to
  /// round-robin n % num_shards. NetTransport daemons use it to spread
  /// their strided slice of the node space evenly over local workers.
  InProcTransport(size_t num_nodes, int num_shards,
                  const RtTransportOptions& options,
                  obs::MetricsRegistry* registry,
                  std::vector<int> shard_map = {});

  size_t num_nodes() const override { return inboxes_.size(); }
  int num_shards() const override { return static_cast<int>(shards_.size()); }
  int shard_of(NodeId node) const override { return shard_map_[node]; }
  std::vector<NodeId> LocalNodes() const override;

  uint64_t DeliverAt(NodeId src, NodeId dst) const override;
  bool TryDeliver(Packet&& packet) override;
  void DeliverBlocking(Packet packet) override;
  void PushControl(NodeId dst, ControlKind kind) override;
  Popped PopReady(int shard, uint64_t max_wait_us) override;
  void Release(const Packet& packet) override;
  uint64_t Stalls() const override;
  size_t CapacityOf(NodeId node) const override;

  // --- internals shared with NetTransport (which embeds one of these for
  // its local inboxes) -----------------------------------------------------

  /// Credit-exempt enqueue for packets whose credits were accounted on the
  /// sending peer (socket arrivals); still bumps the depth gauge.
  void DeliverExempt(Packet&& packet);

  /// Depth-only release for exempt-delivered packets: the credits belong
  /// to the remote sender's share, so only the gauge moves here.
  void ReleaseExempt(NodeId node, uint32_t frames);

 protected:
  void WakeAllForWedge() override;

 private:
  /// Push/pop synchronization of one shard's inboxes.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
  };

  struct Inbox {
    std::deque<Packet> packets;
    std::deque<ControlKind> controls;
    size_t capacity = 0;       ///< effective credit window (0 = unbounded)
    size_t credits = 0;        ///< remaining frame credits (if bounded)
    size_t depth_frames = 0;   ///< undelivered + unreleased frames
    obs::Gauge* depth = nullptr;
    obs::Counter* stalls = nullptr;
  };

  static bool HasCredits(const Inbox& inbox, uint32_t frames) {
    return inbox.capacity == 0 || inbox.credits >= frames;
  }

  RtTransportOptions options_;
  std::vector<Inbox> inboxes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_map_;
  obs::Counter* source_stall_us_ = nullptr;
};

}  // namespace muse::rt

#endif  // MUSE_RT_TRANSPORT_H_
