#ifndef MUSE_RT_TRANSPORT_H_
#define MUSE_RT_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/cep/event.h"
#include "src/obs/metrics.h"

namespace muse::rt {

/// Channel model of the in-process transport (runtime.h ties it to the
/// worker threads). Every network node owns one bounded MPSC inbox;
/// senders coalesce frames into per-link packets (batching), consume inbox
/// credits per frame (credit-based backpressure), and packets become
/// visible to the receiver only after a configurable delivery delay.
struct RtTransportOptions {
  /// Inbox capacity in *frames* (not packets): the credit window granted
  /// to the senders of one node. 0 means unbounded — muse_lint's M800 rule
  /// rejects such configs, since nothing then stops a fast producer from
  /// exhausting memory.
  size_t inbox_capacity = 1024;

  /// Per-node overrides of `inbox_capacity` for heterogeneous deployments
  /// (e.g. a constrained edge node next to beefy aggregators). Entry n, if
  /// present and nonzero, replaces `inbox_capacity` for node n; missing or
  /// zero entries inherit the global value. The static analyzer's M900 rule
  /// checks every deployed link's max batch against the *destination's*
  /// effective window, since a single undersized node wedges the whole
  /// graph.
  std::vector<size_t> node_inbox_capacity;

  /// Max frames coalesced into one packet per link before it is flushed.
  /// Batching amortizes per-packet queue and wake-up costs; latency is
  /// bounded because workers flush all open batches after every processed
  /// packet. Must not exceed `inbox_capacity` (muse_lint M801): a packet
  /// larger than the credit window could never be delivered.
  int batch_max_frames = 32;

  /// One-way delivery delay applied to cross-node packets, in wall-clock
  /// microseconds (the rt analogue of SimOptions::network_delay_ms).
  /// Same-node loopback packets are delivered immediately.
  uint64_t delivery_delay_us = 0;

  /// Wedge watchdog: if a blocking send waits longer than this for credits
  /// (or quiescence sees no in-flight progress for this long), the
  /// transport declares itself wedged and the run aborts instead of
  /// hanging. 0 — the default — waits forever, which is correct for every
  /// config muse_lint --prove certifies; tests use a small timeout to turn
  /// a would-be deadlock into a checkable RtReport::wedged.
  uint64_t wedge_timeout_ms = 0;
};

/// Out-of-band signals delivered through the inbox alongside packets.
/// Control delivery ignores credits (rare, coordinator- or driver-paced).
enum class ControlKind : uint8_t {
  kCrash,         ///< fail the node: drop volatile state, replay the log
  kFlushCollect,  ///< stage 1 of the final flush barrier: stash outputs
  kFlushEmit,     ///< stage 2: route the stashed outputs
  kStop,          ///< terminate the worker loop
};

/// One batch of encoded frames in flight on a (src, dst) link.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t deliver_at_us = 0;  ///< transport-clock due time
  uint32_t frames = 0;         ///< credit cost (frame count)
  std::string bytes;           ///< concatenated wire frames (wire.h)
};

/// The in-process network: per-node bounded inboxes grouped into shards
/// (one worker thread services one shard; runtime.cc assigns nodes
/// round-robin). Push/pop of one shard's inboxes share a shard mutex; all
/// telemetry updates are lock-free registry pointers.
///
/// Flow control contract (deadlock freedom): `TryDeliver` never blocks —
/// worker threads that fail to acquire credits keep the packet in a local
/// spill queue and continue draining their own inbox, so every full inbox
/// always has a consumer making progress. Only the source driver (which
/// consumes nothing) uses the blocking `DeliverBlocking`, making end-to-end
/// backpressure land on event admission, as in credit-based streaming
/// systems.
class Transport {
 public:
  Transport(size_t num_nodes, int num_shards, const RtTransportOptions& options,
            obs::MetricsRegistry* registry);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  size_t num_nodes() const { return inboxes_.size(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(NodeId node) const {
    return static_cast<int>(node % shards_.size());
  }

  /// Microseconds since transport construction (the rt wall clock).
  uint64_t NowUs() const;

  /// Computes the due time of a packet flushed now on src -> dst.
  uint64_t DeliverAt(NodeId src, NodeId dst) const;

  /// Non-blocking delivery: false when the destination inbox lacks
  /// `packet.frames` credits (a backpressure stall, counted per dst node).
  /// Consumes `packet` only on success — on failure the caller's packet is
  /// untouched and can be retried (the spill queues depend on this).
  bool TryDeliver(Packet&& packet);

  /// Blocking delivery for the source driver: waits for credits, counting
  /// the stalled wall time in rt_source_stall_us_total.
  void DeliverBlocking(Packet packet);

  /// Delivers a control signal (credit-exempt, wakes the shard).
  void PushControl(NodeId dst, ControlKind kind);

  /// Everything a shard worker drained in one wait cycle. Controls are
  /// surfaced before packets; the runtime's phase protocol guarantees no
  /// packet/control ordering hazard (barriers run only at quiescence).
  struct Popped {
    std::vector<std::pair<NodeId, ControlKind>> controls;
    std::vector<Packet> packets;
    bool empty() const { return controls.empty() && packets.empty(); }
  };

  /// Pops all due packets and controls of `shard`'s inboxes, waiting up to
  /// `max_wait_us` for something to become due (delivery delays wake the
  /// shard exactly when the earliest packet matures).
  Popped PopReady(int shard, uint64_t max_wait_us);

  /// Returns `frames` credits to `node`'s inbox once the receiver finished
  /// processing them; wakes blocked senders.
  void Release(NodeId node, uint32_t frames);

  /// In-flight frame accounting for quiescence detection: queued when a
  /// frame enters a link batch, done after the receiver processed it (and
  /// enqueued any outputs, keeping the counter conservative).
  void NoteFramesQueued(int64_t n) {
    in_flight_.fetch_add(n, std::memory_order_seq_cst);
  }
  void NoteFramesDone(int64_t n) {
    in_flight_.fetch_sub(n, std::memory_order_seq_cst);
  }
  int64_t InFlight() const { return in_flight_.load(std::memory_order_seq_cst); }

  /// Total backpressure stalls (failed credit acquisitions) so far.
  uint64_t Stalls() const;

  /// Effective credit window of `node`'s inbox in frames (0 = unbounded):
  /// the per-node override when set, else the global `inbox_capacity`.
  size_t CapacityOf(NodeId node) const;

  /// Declares the transport permanently stuck (an undeliverable packet was
  /// detected by the wedge watchdog). Wakes every blocked sender so the run
  /// can unwind instead of hanging.
  void MarkWedged();
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }

 private:
  /// Push/pop synchronization of one shard's inboxes.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
  };

  struct Inbox {
    std::deque<Packet> packets;
    std::deque<ControlKind> controls;
    size_t capacity = 0;       ///< effective credit window (0 = unbounded)
    size_t credits = 0;        ///< remaining frame credits (if bounded)
    size_t depth_frames = 0;   ///< undelivered + unreleased frames
    obs::Gauge* depth = nullptr;
    obs::Counter* stalls = nullptr;
  };

  static bool HasCredits(const Inbox& inbox, uint32_t frames) {
    return inbox.capacity == 0 || inbox.credits >= frames;
  }

  RtTransportOptions options_;
  std::vector<Inbox> inboxes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<bool> wedged_{false};
  obs::Counter* source_stall_us_ = nullptr;
};

}  // namespace muse::rt

#endif  // MUSE_RT_TRANSPORT_H_
