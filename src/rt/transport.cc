#include "src/rt/transport.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse::rt {

InProcTransport::InProcTransport(size_t num_nodes, int num_shards,
                                 const RtTransportOptions& options,
                                 obs::MetricsRegistry* registry,
                                 std::vector<int> shard_map)
    : options_(options), shard_map_(std::move(shard_map)) {
  MUSE_CHECK(num_nodes > 0, "transport needs at least one node");
  MUSE_CHECK(num_shards > 0, "transport needs at least one shard");
  if (shard_map_.empty()) {
    for (size_t n = 0; n < num_nodes; ++n) {
      shard_map_.push_back(static_cast<int>(n % static_cast<size_t>(num_shards)));
    }
  }
  MUSE_CHECK(shard_map_.size() == num_nodes, "transport: bad shard map");
  inboxes_.resize(num_nodes);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (size_t n = 0; n < num_nodes; ++n) {
    Inbox& inbox = inboxes_[n];
    inbox.capacity = options_.inbox_capacity;
    if (n < options_.node_inbox_capacity.size() &&
        options_.node_inbox_capacity[n] != 0) {
      inbox.capacity = options_.node_inbox_capacity[n];
    }
    inbox.credits = inbox.capacity;
    const obs::LabelSet labels{{"node", std::to_string(n)}};
    inbox.depth = registry->GetGauge("rt_inbox_depth", labels);
    inbox.stalls =
        registry->GetCounter("rt_backpressure_stalls_total", labels);
  }
  source_stall_us_ = registry->GetCounter("rt_source_stall_us_total");
}

std::vector<NodeId> InProcTransport::LocalNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(inboxes_.size());
  for (size_t n = 0; n < inboxes_.size(); ++n) {
    nodes.push_back(static_cast<NodeId>(n));
  }
  return nodes;
}

uint64_t InProcTransport::DeliverAt(NodeId src, NodeId dst) const {
  // Loopback is immediate, mirroring the simulator's zero-delay local
  // channels.
  if (src == dst || options_.delivery_delay_us == 0) return NowUs();
  return NowUs() + options_.delivery_delay_us;
}

bool InProcTransport::TryDeliver(Packet&& packet) {
  MUSE_CHECK(packet.dst < inboxes_.size(), "transport: bad dst node");
  Inbox& inbox = inboxes_[packet.dst];
  Shard& shard = *shards_[static_cast<size_t>(shard_of(packet.dst))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!HasCredits(inbox, packet.frames)) {
      inbox.stalls->Add(1);
      return false;
    }
    if (inbox.capacity != 0) inbox.credits -= packet.frames;
    inbox.depth_frames += packet.frames;
    inbox.depth->Set(static_cast<double>(inbox.depth_frames));
    inbox.packets.push_back(std::move(packet));
  }
  shard.cv.notify_all();
  return true;
}

void InProcTransport::DeliverExempt(Packet&& packet) {
  MUSE_CHECK(packet.dst < inboxes_.size(), "transport: bad dst node");
  Inbox& inbox = inboxes_[packet.dst];
  Shard& shard = *shards_[static_cast<size_t>(shard_of(packet.dst))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inbox.depth_frames += packet.frames;
    inbox.depth->Set(static_cast<double>(inbox.depth_frames));
    inbox.packets.push_back(std::move(packet));
  }
  shard.cv.notify_all();
}

void InProcTransport::DeliverBlocking(Packet packet) {
  MUSE_CHECK(packet.dst < inboxes_.size(), "transport: bad dst node");
  Inbox& inbox = inboxes_[packet.dst];
  Shard& shard = *shards_[static_cast<size_t>(shard_of(packet.dst))];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (!HasCredits(inbox, packet.frames)) {
      inbox.stalls->Add(1);
      const uint64_t stall_start = NowUs();
      auto ready = [&] { return HasCredits(inbox, packet.frames) || wedged(); };
      if (options_.wedge_timeout_ms == 0) {
        shard.cv.wait(lock, ready);
      } else if (!shard.cv.wait_for(
                     lock, std::chrono::milliseconds(options_.wedge_timeout_ms),
                     ready)) {
        // Credits never came: the packet is undeliverable (e.g. its frame
        // count exceeds the destination's whole credit window — exactly
        // what the M900 prove rule rejects statically). Declare the wedge,
        // drop the packet, and settle its in-flight accounting so the
        // runtime can unwind.
        source_stall_us_->Add(NowUs() - stall_start);
        lock.unlock();
        MarkWedged();
        NoteFramesDone(packet.frames);
        return;
      }
      source_stall_us_->Add(NowUs() - stall_start);
      if (wedged() && !HasCredits(inbox, packet.frames)) {
        lock.unlock();
        NoteFramesDone(packet.frames);
        return;
      }
    }
    if (inbox.capacity != 0) inbox.credits -= packet.frames;
    inbox.depth_frames += packet.frames;
    inbox.depth->Set(static_cast<double>(inbox.depth_frames));
    inbox.packets.push_back(std::move(packet));
  }
  shard.cv.notify_all();
}

void InProcTransport::PushControl(NodeId dst, ControlKind kind) {
  MUSE_CHECK(dst < inboxes_.size(), "transport: bad control dst");
  Shard& shard = *shards_[static_cast<size_t>(shard_of(dst))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inboxes_[dst].controls.push_back(kind);
  }
  shard.cv.notify_all();
}

Transport::Popped InProcTransport::PopReady(int shard_idx,
                                            uint64_t max_wait_us) {
  Popped out;
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  std::unique_lock<std::mutex> lock(shard.mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(max_wait_us);
  for (;;) {
    const uint64_t now = NowUs();
    uint64_t earliest_due = UINT64_MAX;
    for (size_t n = 0; n < inboxes_.size(); ++n) {
      if (shard_map_[n] != shard_idx) continue;
      Inbox& inbox = inboxes_[n];
      while (!inbox.controls.empty()) {
        out.controls.emplace_back(static_cast<NodeId>(n),
                                  inbox.controls.front());
        inbox.controls.pop_front();
      }
      while (!inbox.packets.empty()) {
        if (inbox.packets.front().deliver_at_us > now) {
          earliest_due =
              std::min(earliest_due, inbox.packets.front().deliver_at_us);
          break;
        }
        out.packets.push_back(std::move(inbox.packets.front()));
        inbox.packets.pop_front();
      }
    }
    if (!out.empty()) return out;
    // Nothing due: sleep until the earliest in-flight packet matures, the
    // caller's wait budget runs out, or a push wakes the shard.
    auto wake = deadline;
    if (earliest_due != UINT64_MAX) {
      const uint64_t now2 = NowUs();
      const auto due_tp =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(earliest_due > now2 ? earliest_due - now2
                                                        : 0);
      if (due_tp < wake) wake = due_tp;
    }
    if (shard.cv.wait_until(lock, wake) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= deadline) {
      return out;
    }
  }
}

void InProcTransport::Release(const Packet& packet) {
  const NodeId node = packet.dst;
  const uint32_t frames = packet.frames;
  Inbox& inbox = inboxes_[node];
  Shard& shard = *shards_[static_cast<size_t>(shard_of(node))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (inbox.capacity != 0) inbox.credits += frames;
    inbox.depth_frames -= std::min<size_t>(inbox.depth_frames, frames);
    inbox.depth->Set(static_cast<double>(inbox.depth_frames));
  }
  shard.cv.notify_all();
}

void InProcTransport::ReleaseExempt(NodeId node, uint32_t frames) {
  Inbox& inbox = inboxes_[node];
  Shard& shard = *shards_[static_cast<size_t>(shard_of(node))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inbox.depth_frames -= std::min<size_t>(inbox.depth_frames, frames);
    inbox.depth->Set(static_cast<double>(inbox.depth_frames));
  }
  shard.cv.notify_all();
}

uint64_t InProcTransport::Stalls() const {
  uint64_t total = 0;
  for (const Inbox& inbox : inboxes_) total += inbox.stalls->Value();
  return total;
}

size_t InProcTransport::CapacityOf(NodeId node) const {
  MUSE_CHECK(node < inboxes_.size(), "transport: bad node");
  return inboxes_[node].capacity;
}

void InProcTransport::WakeAllForWedge() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
  }
  for (auto& shard : shards_) shard->cv.notify_all();
}

}  // namespace muse::rt
