#ifndef MUSE_RT_RUNTIME_H_
#define MUSE_RT_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/cep/evaluator.h"
#include "src/dist/deployment.h"
#include "src/dist/metrics.h"
#include "src/obs/drift.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/rt/transport.h"

namespace muse::rt {

/// Control-plane seam of muse-adapt (src/adapt/): the runtime polls the
/// driver between source events with the current drift verdict; a non-null
/// return asks for a live migration to that deployment. The driver (e.g.
/// adapt::AdaptController) owns every deployment it ever returns — each
/// must stay alive until Run() finishes, because migration keeps no copy.
///
/// All callbacks arrive on the runtime's source-driver thread, strictly
/// serialized: OnDriftReport never overlaps itself or OnMigrated.
class AdaptDriver {
 public:
  virtual ~AdaptDriver() = default;

  /// Called every RtOptions::adapt_check_interval_ms of trace time with
  /// the detector's mid-run verdict (an empty report when drift detection
  /// is off). Return the deployment to migrate to, or nullptr to stay.
  virtual const Deployment* OnDriftReport(
      const obs::RateDriftDetector::Report& report, uint64_t trace_now_ms) = 0;

  /// Outcome of a requested migration: `ok` is false when the plan was
  /// rejected (no-op diff, incompatible primitives, node overflow) or the
  /// transport wedged mid-handoff. `pause_us` is the wall-clock
  /// quiesce-to-resume pause (0 on rejection).
  virtual void OnMigrated(uint64_t pause_us, bool ok) {
    (void)pause_us;
    (void)ok;
  }

  /// Background re-planning runs completed so far (telemetry only).
  virtual uint64_t Replans() const { return 0; }
};

/// Which transport carries the frames (see transport.h for the seam).
enum class RtTransportKind {
  kInProc,    ///< shared-memory inboxes, one process (the original mode)
  kLoopback,  ///< one process, but every cross-node packet round-trips
              ///< through a real localhost TCP socket (full wire path)
  kCluster,   ///< N muse_node daemon processes + this coordinator process
};

/// Configuration of the multi-threaded execution runtime.
struct RtOptions {
  /// Worker threads servicing the node inboxes. 0 = one thread per network
  /// node (the paper's testbed model, §7.1); k > 0 multiplexes the nodes
  /// onto min(k, nodes) shard threads round-robin, which is what the
  /// throughput bench scales over.
  int num_threads = 0;

  /// Channel model: inbox credit windows, per-link batching, delivery
  /// delay (transport.h).
  RtTransportOptions transport;

  /// Target aggregate injection rate of the Poisson source driver in
  /// events/second; 0 injects as fast as backpressure admits (the
  /// saturation-throughput mode of bench_rt_throughput).
  double source_rate_eps = 0;

  /// Seed of the driver's Poisson inter-arrival draws.
  uint64_t source_seed = 1;

  /// Evaluator options for every deployed task. An `eviction_slack_ms` of
  /// 0 selects an effectively unbounded eviction horizon: under real
  /// threading the cross-part event-time skew is bounded by queueing, not
  /// by a virtual clock, and any finite slack could drop partial matches a
  /// delayed input still needs — breaking the determinism contract that
  /// the final match set is a pure function of the trace. Long-running
  /// production configs should set a finite slack (muse_lint M802 flags
  /// the unbounded default).
  EvaluatorOptions eval;

  /// Collect per-query matches in the report (the differential harness
  /// needs them; saturation benches turn them off).
  bool collect_matches = true;

  /// Injected failures as (node, trace-time ms): the source driver crashes
  /// the node when the trace reaches that virtual time; the node recovers
  /// by replaying its durable input log and re-sending outputs, which
  /// receivers deduplicate (the same exactly-once model the simulator
  /// pins down).
  std::vector<std::pair<NodeId, uint64_t>> failures;

  /// muse-trace sampling: 1 in `trace_sample_every` source events (by a
  /// deterministic hash of Event::seq, obs/trace.h) gets a trace id that
  /// rides the wire into every derived match; each stage it passes through
  /// becomes a span in RtReport::trace_log. 0 disables tracing, and the
  /// wire format then stays byte-identical to the pre-trace (v1) frames.
  /// Sampling is a pure function of the trace, so it can never change the
  /// match multiset (pinned by rt_differential_test).
  uint64_t trace_sample_every = 0;
  /// Span capacity of each per-thread buffer; overflow is counted, not
  /// reallocated (rt_trace_spans_dropped_total).
  size_t trace_max_spans_per_thread = 1 << 16;

  /// Rate-drift detection against the deployment's planner_rates()
  /// snapshot; results land in RtReport::{drift_score, drifted,
  /// drift_report} and rt_drift_* gauges. Force-disabled in kCluster mode:
  /// daemon-side observations can never reach the coordinator's detector,
  /// so a partial stream would only false-positive.
  obs::DriftOptions drift;

  // --- muse-net -----------------------------------------------------------

  /// Transport selection. kInProc and kLoopback are drop-in (same process,
  /// same report); kCluster additionally needs the fields below.
  RtTransportKind transport_kind = RtTransportKind::kInProc;

  /// kCluster: number of muse_node daemon processes to launch. Node n is
  /// owned by daemon n % processes.
  int processes = 1;

  /// kCluster: path of the muse_node binary, or empty to probe next to the
  /// current executable / ../tools/muse_node / $MUSE_NODE_BIN.
  std::string muse_node_bin;

  /// kCluster: the workload spec text and plan JSON the daemons recompile
  /// into the identical Deployment (dist/plan_io.h). Both sides must agree
  /// byte-for-byte or task ids diverge; WriteDeploymentSpec produces a
  /// spec that round-trips the planner's predicates exactly.
  std::string cluster_spec_text;
  std::string cluster_plan_json;

  /// kCluster: per-daemon mesh host strings (DeploymentSpec::peer_hosts,
  /// from `peer <k> <host>` spec lines). Forwarded verbatim into the
  /// kPeers directory frame; missing/empty entries mean 127.0.0.1.
  std::vector<std::string> cluster_peer_hosts;

  /// kCluster chaos: (daemon process index, wall-clock delay ms after
  /// launch) pairs; each daemon gets SIGKILL at its delay. The coordinator
  /// must then detect the dead peer within wedge_timeout_ms and report
  /// RtReport::wedged — the crash-detection property rt_runtime_test pins.
  std::vector<std::pair<int, uint64_t>> kill_schedule;

  // --- muse-adapt ---------------------------------------------------------

  /// Closed-loop re-planning driver, or null for a fixed plan. Only
  /// honored by the single-process transports (kInProc, kLoopback): in
  /// kCluster mode drift detection is already force-disabled, and daemons
  /// recompile their plan from files, so live migration has no carrier.
  /// The driver must outlive Run().
  AdaptDriver* adapt = nullptr;

  /// Trace-time period between AdaptDriver::OnDriftReport polls.
  uint64_t adapt_check_interval_ms = 250;

  /// Lower bound on the transport's node count. Migration can only install
  /// plans whose nodes fit the transport built at startup, so adaptive
  /// runs set this to the network's node count — every candidate plan of
  /// the same network then fits, whatever subset the initial plan used.
  /// 0 derives the count from the initial deployment alone.
  size_t min_nodes = 0;
};

/// Results of one runtime execution. Latency here is *wall-clock* time
/// from the injection of a match's last constituent event to its emission
/// at a sink — the number the simulator cannot produce.
struct RtReport {
  uint64_t source_events = 0;    ///< trace length
  uint64_t injected_events = 0;  ///< events actually delivered to sources
  uint64_t inputs_processed = 0; ///< frames processed across all nodes
  uint64_t network_frames = 0;   ///< frames that crossed a node boundary
  uint64_t network_bytes = 0;    ///< encoded bytes of those frames
  uint64_t backpressure_stalls = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t crashes = 0;

  /// True when the wedge watchdog (RtTransportOptions::wedge_timeout_ms)
  /// aborted the run: a packet could not be delivered within the timeout,
  /// i.e. the config deadlocked exactly as a prove-time M900 predicts.
  /// Matches and counters below reflect a truncated run.
  bool wedged = false;

  /// Injected events per wall-clock second of the whole run (injection
  /// through final flush) — the sustained pipeline rate.
  double events_per_sec = 0;
  double wall_seconds = 0;

  /// Wall-clock end-to-end detection latency over all queries (ms);
  /// per-query HDR histograms live in `telemetry` as rt_latency_ms.
  Distribution latency_ms;

  /// Deduplicated, canonicalized matches per workload query; identical to
  /// the DistributedSimulator's for the same (deployment, trace) — pinned
  /// by tests/rt_differential_test.
  std::vector<std::vector<Match>> matches_per_query;

  /// Full metrics registry of the run (rt_* families).
  std::shared_ptr<obs::RunTelemetry> telemetry;

  /// Merged causal-trace span log (null when trace_sample_every == 0);
  /// feed to obs::ExportTrace / TraceLog::Summarize.
  std::shared_ptr<obs::TraceLog> trace_log;

  /// Rate-drift verdict vs the deployment's planner-rate snapshot: max
  /// windowed drift score over the flag-eligible (per-type) streams, the
  /// flag itself, and the full per-stream report. All zero/false/empty
  /// when the detector was disabled. After a live migration the score and
  /// flag are sticky maxima across plan generations; the stream report is
  /// the final generation's.
  double drift_score = 0;
  bool drifted = false;
  obs::RateDriftDetector::Report drift_report;

  /// muse-adapt: live migrations executed / rejected, replay state moved
  /// (events and encoded wire bytes), and the wall-clock pause of each
  /// migration from quiesce to resume. All zero/empty without an
  /// RtOptions::adapt driver.
  uint64_t migrations = 0;
  uint64_t migration_aborts = 0;
  uint64_t migration_state_events = 0;
  uint64_t migration_state_bytes = 0;
  std::vector<uint64_t> migration_pause_us;

  std::string Summary() const;
};

/// A shared-nothing multi-threaded executor for a deployed MuSE graph:
/// every network node's state (evaluators, input log, exactly-once
/// filters) is owned by exactly one worker thread; nodes exchange
/// binary-serialized wire frames (wire.h) through bounded, credit-flow-
/// controlled inboxes (transport.h); a driver thread injects the trace as
/// a Poisson source process. Reuses NodeRuntime unchanged, so task
/// evaluation, crash/recovery, and exactly-once admission are the exact
/// semantics the discrete-event simulator executes — the differential
/// harness holds the two implementations to identical final match sets.
class RtRuntime {
 public:
  RtRuntime(const Deployment& deployment, const RtOptions& options);

  /// Runs the full trace to completion (including the final flush barrier)
  /// and reports. Call once per instance.
  RtReport Run(const std::vector<Event>& trace);

 private:
  const Deployment& deployment_;
  RtOptions options_;
};

}  // namespace muse::rt

#endif  // MUSE_RT_RUNTIME_H_
