#include "src/rt/wire.h"

#include <cstring>

namespace muse::rt {
namespace {

constexpr size_t kEventBodyBytes = 4 + 4 + 8 + 8 + 8 * kNumAttrs;
constexpr size_t kMessageHeaderBytes = 4 + 4 + 8 + 4;

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

/// Bounds-checked little-endian reads over `data[0, size)` at a moving
/// cursor; every getter fails (returns false) instead of reading past the
/// end.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (size - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (size - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool GetI32(int32_t* v) {
    uint32_t u = 0;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
};

void PutEventBody(const Event& e, std::string* out) {
  PutU32(e.type, out);
  PutU32(e.origin, out);
  PutU64(e.seq, out);
  PutU64(e.time, out);
  for (int i = 0; i < kNumAttrs; ++i) PutI64(e.attrs[static_cast<size_t>(i)], out);
}

bool GetEventBody(Reader* r, Event* e) {
  if (!r->GetU32(&e->type)) return false;
  if (!r->GetU32(&e->origin)) return false;
  if (!r->GetU64(&e->seq)) return false;
  if (!r->GetU64(&e->time)) return false;
  for (int i = 0; i < kNumAttrs; ++i) {
    if (!r->GetI64(&e->attrs[static_cast<size_t>(i)])) return false;
  }
  return true;
}

}  // namespace

size_t EventFrameBytes() { return 4 + 1 + kEventBodyBytes; }

size_t MessageFrameBytes(const Match& payload) {
  return 4 + 1 + kMessageHeaderBytes + kEventBodyBytes * payload.events.size();
}

void AppendEventFrame(const Event& e, std::string* out) {
  PutU32(static_cast<uint32_t>(1 + kEventBodyBytes), out);
  out->push_back(static_cast<char>(FrameKind::kEvent));
  PutEventBody(e, out);
}

void AppendMessageFrame(const SimMessage& m, std::string* out) {
  const size_t body =
      kMessageHeaderBytes + kEventBodyBytes * m.payload.events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kMessage));
  PutI32(m.src_task, out);
  PutI32(m.dst_task, out);
  PutU64(m.channel_seq, out);
  PutU32(static_cast<uint32_t>(m.payload.events.size()), out);
  for (const Event& e : m.payload.events) PutEventBody(e, out);
}

void AppendEventFrame(const Event& e, const TraceContext& trace,
                      std::string* out) {
  if (!trace.traced()) {
    // Version gate: untraced frames stay on the v1 kind, byte-identical
    // to the pre-trace format.
    AppendEventFrame(e, out);
    return;
  }
  PutU32(static_cast<uint32_t>(1 + kTraceContextBytes + kEventBodyBytes),
         out);
  out->push_back(static_cast<char>(FrameKind::kEventTraced));
  PutU64(trace.trace_id, out);
  PutU64(trace.sent_us, out);
  PutEventBody(e, out);
}

void AppendMessageFrame(const SimMessage& m, const TraceContext& trace,
                        std::string* out) {
  if (!trace.traced()) {
    AppendMessageFrame(m, out);
    return;
  }
  const size_t body = kTraceContextBytes + kMessageHeaderBytes +
                      kEventBodyBytes * m.payload.events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kMessageTraced));
  PutU64(trace.trace_id, out);
  PutU64(trace.sent_us, out);
  PutI32(m.src_task, out);
  PutI32(m.dst_task, out);
  PutU64(m.channel_seq, out);
  PutU32(static_cast<uint32_t>(m.payload.events.size()), out);
  for (const Event& e : m.payload.events) PutEventBody(e, out);
}

Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size,
                                 size_t* consumed) {
  *consumed = 0;
  Reader r{data, size};
  uint32_t payload_len = 0;
  if (!r.GetU32(&payload_len)) {
    return Err("wire: truncated frame (missing length prefix, ",
               std::to_string(size), " bytes)");
  }
  if (payload_len == 0) return Err("wire: empty frame (payload_len 0)");
  if (payload_len > kMaxFramePayloadBytes) {
    return Err("wire: oversized frame (payload_len ",
               std::to_string(payload_len), " > cap ",
               std::to_string(kMaxFramePayloadBytes), ")");
  }
  if (size - r.pos < payload_len) {
    return Err("wire: truncated frame (need ", std::to_string(payload_len),
               " payload bytes, have ", std::to_string(size - r.pos), ")");
  }
  // Clamp the reader to this frame so a malformed body can never consume
  // bytes of the next frame.
  r.size = r.pos + payload_len;
  const size_t frame_end = r.size;
  const uint8_t kind_byte = data[r.pos++];

  DecodedFrame frame;
  switch (kind_byte) {
    case static_cast<uint8_t>(FrameKind::kEventTraced):
    case static_cast<uint8_t>(FrameKind::kEvent): {
      // Traced (v2) frames differ from v1 only by the TraceContext
      // between kind byte and body; the exact-size check below accounts
      // for it via `ctx_bytes`.
      const bool traced =
          kind_byte == static_cast<uint8_t>(FrameKind::kEventTraced);
      const size_t ctx_bytes = traced ? kTraceContextBytes : 0;
      frame.kind = traced ? FrameKind::kEventTraced : FrameKind::kEvent;
      if (payload_len != 1 + ctx_bytes + kEventBodyBytes) {
        return Err("wire: event frame body size ",
                   std::to_string(payload_len - 1), " != ",
                   std::to_string(ctx_bytes + kEventBodyBytes));
      }
      if (traced && (!r.GetU64(&frame.trace.trace_id) ||
                     !r.GetU64(&frame.trace.sent_us))) {
        return Err("wire: truncated trace context");
      }
      if (!GetEventBody(&r, &frame.event)) {
        return Err("wire: truncated event body");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kMessageTraced):
    case static_cast<uint8_t>(FrameKind::kMessage): {
      const bool traced =
          kind_byte == static_cast<uint8_t>(FrameKind::kMessageTraced);
      frame.kind = traced ? FrameKind::kMessageTraced : FrameKind::kMessage;
      if (traced && (!r.GetU64(&frame.trace.trace_id) ||
                     !r.GetU64(&frame.trace.sent_us))) {
        return Err("wire: truncated trace context");
      }
      if (!r.GetI32(&frame.message.src_task) ||
          !r.GetI32(&frame.message.dst_task) ||
          !r.GetU64(&frame.message.channel_seq)) {
        return Err("wire: truncated message header");
      }
      uint32_t num_events = 0;
      if (!r.GetU32(&num_events)) return Err("wire: truncated message header");
      // Cheap consistency check before any allocation: the declared event
      // count must exactly fill the remaining payload.
      if (static_cast<uint64_t>(num_events) * kEventBodyBytes !=
          frame_end - r.pos) {
        return Err("wire: message declares ", std::to_string(num_events),
                   " events but carries ", std::to_string(frame_end - r.pos),
                   " body bytes");
      }
      frame.message.payload.events.resize(num_events);
      for (uint32_t i = 0; i < num_events; ++i) {
        if (!GetEventBody(&r, &frame.message.payload.events[i])) {
          return Err("wire: truncated message event ", std::to_string(i));
        }
      }
      // The wire format carries only the events; restore the cached span
      // invariant the evaluator's window checks rely on.
      frame.message.payload.RecomputeSpan();
      break;
    }
    default:
      return Err("wire: unknown frame kind ", std::to_string(kind_byte));
  }
  if (r.pos != frame_end) {
    return Err("wire: ", std::to_string(frame_end - r.pos),
               " trailing bytes inside frame");
  }
  *consumed = frame_end;
  return frame;
}

Result<std::vector<DecodedFrame>> DecodePacket(const std::string& bytes) {
  std::vector<DecodedFrame> frames;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t consumed = 0;
    Result<DecodedFrame> frame =
        DecodeFrame(data + pos, bytes.size() - pos, &consumed);
    if (!frame.ok()) return frame.error();
    frames.push_back(std::move(frame).value());
    pos += consumed;
  }
  return frames;
}

}  // namespace muse::rt
