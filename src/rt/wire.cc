#include "src/rt/wire.h"

#include <cstring>

namespace muse::rt {
namespace {

constexpr size_t kEventBodyBytes = 4 + 4 + 8 + 8 + 8 * kNumAttrs;
constexpr size_t kMessageHeaderBytes = 4 + 4 + 8 + 4;

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

/// Bounds-checked little-endian reads over `data[0, size)` at a moving
/// cursor; every getter fails (returns false) instead of reading past the
/// end.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (size - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (size - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool GetI32(int32_t* v) {
    uint32_t u = 0;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
};

void PutEventBody(const Event& e, std::string* out) {
  PutU32(e.type, out);
  PutU32(e.origin, out);
  PutU64(e.seq, out);
  PutU64(e.time, out);
  for (int i = 0; i < kNumAttrs; ++i) PutI64(e.attrs[static_cast<size_t>(i)], out);
}

bool GetEventBody(Reader* r, Event* e) {
  if (!r->GetU32(&e->type)) return false;
  if (!r->GetU32(&e->origin)) return false;
  if (!r->GetU64(&e->seq)) return false;
  if (!r->GetU64(&e->time)) return false;
  for (int i = 0; i < kNumAttrs; ++i) {
    if (!r->GetI64(&e->attrs[static_cast<size_t>(i)])) return false;
  }
  return true;
}

}  // namespace

size_t EventFrameBytes() { return 4 + 1 + kEventBodyBytes; }

size_t MessageFrameBytes(const Match& payload) {
  return 4 + 1 + kMessageHeaderBytes + kEventBodyBytes * payload.events.size();
}

void AppendEventFrame(const Event& e, std::string* out) {
  PutU32(static_cast<uint32_t>(1 + kEventBodyBytes), out);
  out->push_back(static_cast<char>(FrameKind::kEvent));
  PutEventBody(e, out);
}

void AppendMessageFrame(const SimMessage& m, std::string* out) {
  const size_t body =
      kMessageHeaderBytes + kEventBodyBytes * m.payload.events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kMessage));
  PutI32(m.src_task, out);
  PutI32(m.dst_task, out);
  PutU64(m.channel_seq, out);
  PutU32(static_cast<uint32_t>(m.payload.events.size()), out);
  for (const Event& e : m.payload.events) PutEventBody(e, out);
}

void AppendEventFrame(const Event& e, const TraceContext& trace,
                      std::string* out) {
  if (!trace.traced()) {
    // Version gate: untraced frames stay on the v1 kind, byte-identical
    // to the pre-trace format.
    AppendEventFrame(e, out);
    return;
  }
  PutU32(static_cast<uint32_t>(1 + kTraceContextBytes + kEventBodyBytes),
         out);
  out->push_back(static_cast<char>(FrameKind::kEventTraced));
  PutU64(trace.trace_id, out);
  PutU64(trace.sent_us, out);
  PutEventBody(e, out);
}

void AppendMessageFrame(const SimMessage& m, const TraceContext& trace,
                        std::string* out) {
  if (!trace.traced()) {
    AppendMessageFrame(m, out);
    return;
  }
  const size_t body = kTraceContextBytes + kMessageHeaderBytes +
                      kEventBodyBytes * m.payload.events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kMessageTraced));
  PutU64(trace.trace_id, out);
  PutU64(trace.sent_us, out);
  PutI32(m.src_task, out);
  PutI32(m.dst_task, out);
  PutU64(m.channel_seq, out);
  PutU32(static_cast<uint32_t>(m.payload.events.size()), out);
  for (const Event& e : m.payload.events) PutEventBody(e, out);
}

Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size,
                                 size_t* consumed) {
  *consumed = 0;
  Reader r{data, size};
  uint32_t payload_len = 0;
  if (!r.GetU32(&payload_len)) {
    return Err("wire: truncated frame (missing length prefix, ",
               std::to_string(size), " bytes)");
  }
  if (payload_len == 0) return Err("wire: empty frame (payload_len 0)");
  if (payload_len > kMaxFramePayloadBytes) {
    return Err("wire: oversized frame (payload_len ",
               std::to_string(payload_len), " > cap ",
               std::to_string(kMaxFramePayloadBytes), ")");
  }
  if (size - r.pos < payload_len) {
    return Err("wire: truncated frame (need ", std::to_string(payload_len),
               " payload bytes, have ", std::to_string(size - r.pos), ")");
  }
  // Clamp the reader to this frame so a malformed body can never consume
  // bytes of the next frame.
  r.size = r.pos + payload_len;
  const size_t frame_end = r.size;
  const uint8_t kind_byte = data[r.pos++];

  DecodedFrame frame;
  switch (kind_byte) {
    case static_cast<uint8_t>(FrameKind::kEventTraced):
    case static_cast<uint8_t>(FrameKind::kEvent): {
      // Traced (v2) frames differ from v1 only by the TraceContext
      // between kind byte and body; the exact-size check below accounts
      // for it via `ctx_bytes`.
      const bool traced =
          kind_byte == static_cast<uint8_t>(FrameKind::kEventTraced);
      const size_t ctx_bytes = traced ? kTraceContextBytes : 0;
      frame.kind = traced ? FrameKind::kEventTraced : FrameKind::kEvent;
      if (payload_len != 1 + ctx_bytes + kEventBodyBytes) {
        return Err("wire: event frame body size ",
                   std::to_string(payload_len - 1), " != ",
                   std::to_string(ctx_bytes + kEventBodyBytes));
      }
      if (traced && (!r.GetU64(&frame.trace.trace_id) ||
                     !r.GetU64(&frame.trace.sent_us))) {
        return Err("wire: truncated trace context");
      }
      if (!GetEventBody(&r, &frame.event)) {
        return Err("wire: truncated event body");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kMessageTraced):
    case static_cast<uint8_t>(FrameKind::kMessage): {
      const bool traced =
          kind_byte == static_cast<uint8_t>(FrameKind::kMessageTraced);
      frame.kind = traced ? FrameKind::kMessageTraced : FrameKind::kMessage;
      if (traced && (!r.GetU64(&frame.trace.trace_id) ||
                     !r.GetU64(&frame.trace.sent_us))) {
        return Err("wire: truncated trace context");
      }
      if (!r.GetI32(&frame.message.src_task) ||
          !r.GetI32(&frame.message.dst_task) ||
          !r.GetU64(&frame.message.channel_seq)) {
        return Err("wire: truncated message header");
      }
      uint32_t num_events = 0;
      if (!r.GetU32(&num_events)) return Err("wire: truncated message header");
      // Cheap consistency check before any allocation: the declared event
      // count must exactly fill the remaining payload.
      if (static_cast<uint64_t>(num_events) * kEventBodyBytes !=
          frame_end - r.pos) {
        return Err("wire: message declares ", std::to_string(num_events),
                   " events but carries ", std::to_string(frame_end - r.pos),
                   " body bytes");
      }
      frame.message.payload.events.resize(num_events);
      for (uint32_t i = 0; i < num_events; ++i) {
        if (!GetEventBody(&r, &frame.message.payload.events[i])) {
          return Err("wire: truncated message event ", std::to_string(i));
        }
      }
      // The wire format carries only the events; restore the cached span
      // invariant the evaluator's window checks rely on.
      frame.message.payload.RecomputeSpan();
      break;
    }
    default:
      return Err("wire: unknown frame kind ", std::to_string(kind_byte));
  }
  if (r.pos != frame_end) {
    return Err("wire: ", std::to_string(frame_end - r.pos),
               " trailing bytes inside frame");
  }
  *consumed = frame_end;
  return frame;
}

// --- muse-net control plane ------------------------------------------------

void AppendPacketFrame(uint32_t src, uint32_t dst, uint64_t deliver_at_us,
                       uint32_t frames, const std::string& inner,
                       std::string* out) {
  PutU32(static_cast<uint32_t>(1 + 4 + 4 + 8 + 4 + inner.size()), out);
  out->push_back(static_cast<char>(FrameKind::kPacket));
  PutU32(src, out);
  PutU32(dst, out);
  PutU64(deliver_at_us, out);
  PutU32(frames, out);
  out->append(inner);
}

void AppendCreditFrame(uint32_t node, uint32_t frames, std::string* out) {
  PutU32(1 + 4 + 4, out);
  out->push_back(static_cast<char>(FrameKind::kCredit));
  PutU32(node, out);
  PutU32(frames, out);
}

void AppendControlFrame(uint32_t node, ControlKind op, std::string* out) {
  PutU32(1 + 4 + 1, out);
  out->push_back(static_cast<char>(FrameKind::kControl));
  PutU32(node, out);
  out->push_back(static_cast<char>(op));
}

void AppendAckFrame(ControlKind op, uint32_t count, std::string* out) {
  PutU32(1 + 1 + 4, out);
  out->push_back(static_cast<char>(FrameKind::kAck));
  out->push_back(static_cast<char>(op));
  PutU32(count, out);
}

void AppendQuiesceFrame(bool is_reply, uint64_t queued_total,
                        uint64_t done_total, std::string* out) {
  PutU32(1 + 1 + 8 + 8, out);
  out->push_back(static_cast<char>(FrameKind::kQuiesce));
  out->push_back(is_reply ? 1 : 0);
  PutU64(queued_total, out);
  PutU64(done_total, out);
}

void AppendSinkMatchFrame(uint32_t query, const Match& match,
                          const TraceContext& trace, std::string* out) {
  const size_t body =
      4 + 8 + 8 + 4 + kEventBodyBytes * match.events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kSinkMatch));
  PutU32(query, out);
  PutU64(trace.trace_id, out);
  PutU64(trace.sent_us, out);
  PutU32(static_cast<uint32_t>(match.events.size()), out);
  for (const Event& e : match.events) PutEventBody(e, out);
}

void AppendHelloFrame(uint32_t process, uint32_t listen_port,
                      std::string* out) {
  PutU32(1 + 4 + 4, out);
  out->push_back(static_cast<char>(FrameKind::kHello));
  PutU32(process, out);
  PutU32(listen_port, out);
}

void AppendPeersFrame(uint64_t coord_now_us,
                      const std::vector<uint32_t>& ports,
                      const std::vector<std::string>& hosts,
                      std::string* out) {
  // Hosts ride a u8 length each; anything longer is truncated (cluster
  // spec validation rejects such hosts long before they reach the wire).
  auto host_len = [&](size_t i) -> size_t {
    if (i >= hosts.size()) return 0;
    return hosts[i].size() > 255 ? 255 : hosts[i].size();
  };
  size_t body = 1 + 8 + 4;
  for (size_t i = 0; i < ports.size(); ++i) body += 4 + 1 + host_len(i);
  PutU32(static_cast<uint32_t>(body), out);
  out->push_back(static_cast<char>(FrameKind::kPeers));
  PutU64(coord_now_us, out);
  PutU32(static_cast<uint32_t>(ports.size()), out);
  for (size_t i = 0; i < ports.size(); ++i) {
    PutU32(ports[i], out);
    const size_t len = host_len(i);
    out->push_back(static_cast<char>(len));
    if (len > 0) out->append(hosts[i].data(), len);
  }
}

void AppendReadyFrame(uint32_t process, std::string* out) {
  PutU32(1 + 4, out);
  out->push_back(static_cast<char>(FrameKind::kReady));
  PutU32(process, out);
}

void AppendStatsFrame(const std::vector<StatEntry>& stats, std::string* out) {
  PutU32(static_cast<uint32_t>(1 + 4 + (1 + 4 + 8) * stats.size()), out);
  out->push_back(static_cast<char>(FrameKind::kStats));
  PutU32(static_cast<uint32_t>(stats.size()), out);
  for (const StatEntry& s : stats) {
    out->push_back(static_cast<char>(s.stat));
    PutU32(s.index, out);
    PutU64(s.value, out);
  }
}

void AppendSpanFrame(uint64_t trace_id, uint8_t span_kind, uint32_t node,
                     int32_t task, uint32_t peer, int32_t query,
                     uint64_t start_us, uint64_t dur_us, std::string* out) {
  PutU32(1 + 8 + 1 + 4 + 4 + 4 + 4 + 8 + 8, out);
  out->push_back(static_cast<char>(FrameKind::kSpan));
  PutU64(trace_id, out);
  out->push_back(static_cast<char>(span_kind));
  PutU32(node, out);
  PutI32(task, out);
  PutU32(peer, out);
  PutI32(query, out);
  PutU64(start_us, out);
  PutU64(dur_us, out);
}

void AppendByeFrame(uint8_t code, std::string* out) {
  PutU32(1 + 1, out);
  out->push_back(static_cast<char>(FrameKind::kBye));
  out->push_back(static_cast<char>(code));
}

void AppendMigrateFrame(uint64_t migration_id, uint64_t barrier_ms,
                        uint64_t horizon_ms, uint32_t chunks,
                        std::string* out) {
  PutU32(1 + 8 + 8 + 8 + 4, out);
  out->push_back(static_cast<char>(FrameKind::kMigrate));
  PutU64(migration_id, out);
  PutU64(barrier_ms, out);
  PutU64(horizon_ms, out);
  PutU32(chunks, out);
}

void AppendStateChunkFrame(uint64_t migration_id, uint32_t node,
                           const std::vector<Event>& events,
                           std::string* out) {
  const size_t body = 8 + 4 + 4 + kEventBodyBytes * events.size();
  PutU32(static_cast<uint32_t>(1 + body), out);
  out->push_back(static_cast<char>(FrameKind::kStateChunk));
  PutU64(migration_id, out);
  PutU32(node, out);
  PutU32(static_cast<uint32_t>(events.size()), out);
  for (const Event& e : events) PutEventBody(e, out);
}

size_t MaxStateChunkEvents() {
  return (kMaxFramePayloadBytes - (1 + 8 + 4 + 4)) / kEventBodyBytes;
}

Result<NetFrame> DecodeNetFrame(const uint8_t* data, size_t size,
                                size_t* consumed) {
  *consumed = 0;
  Reader r{data, size};
  uint32_t payload_len = 0;
  if (!r.GetU32(&payload_len)) {
    return Err("wire: truncated frame (missing length prefix, ",
               std::to_string(size), " bytes)");
  }
  if (payload_len == 0) return Err("wire: empty frame (payload_len 0)");
  if (payload_len > kMaxFramePayloadBytes) {
    return Err("wire: oversized frame (payload_len ",
               std::to_string(payload_len), " > cap ",
               std::to_string(kMaxFramePayloadBytes), ")");
  }
  if (size - r.pos < payload_len) {
    return Err("wire: truncated frame (need ", std::to_string(payload_len),
               " payload bytes, have ", std::to_string(size - r.pos), ")");
  }
  const uint8_t kind_byte = data[4];
  NetFrame nf;
  // Data-plane kinds: delegate so the two decoders can never diverge.
  if (kind_byte >= static_cast<uint8_t>(FrameKind::kEvent) &&
      kind_byte <= static_cast<uint8_t>(FrameKind::kMessageTraced)) {
    Result<DecodedFrame> inner = DecodeFrame(data, size, consumed);
    if (!inner.ok()) return inner.error();
    nf.kind = inner.value().kind;
    nf.frame = std::move(inner).value();
    return nf;
  }
  r.size = r.pos + payload_len;
  const size_t frame_end = r.size;
  ++r.pos;  // kind byte
  auto take_u8 = [&](uint8_t* v) {
    if (r.pos >= r.size) return false;
    *v = data[r.pos++];
    return true;
  };
  switch (kind_byte) {
    case static_cast<uint8_t>(FrameKind::kPacket): {
      nf.kind = FrameKind::kPacket;
      if (!r.GetU32(&nf.src) || !r.GetU32(&nf.dst) ||
          !r.GetU64(&nf.deliver_at_us) || !r.GetU32(&nf.frames)) {
        return Err("wire: truncated packet envelope");
      }
      nf.inner.assign(reinterpret_cast<const char*>(data + r.pos),
                      frame_end - r.pos);
      r.pos = frame_end;
      break;
    }
    case static_cast<uint8_t>(FrameKind::kCredit): {
      nf.kind = FrameKind::kCredit;
      if (payload_len != 1 + 4 + 4) return Err("wire: bad credit frame size");
      if (!r.GetU32(&nf.dst) || !r.GetU32(&nf.frames)) {
        return Err("wire: truncated credit frame");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kControl): {
      nf.kind = FrameKind::kControl;
      if (payload_len != 1 + 4 + 1) return Err("wire: bad control frame size");
      uint8_t op = 0;
      if (!r.GetU32(&nf.dst) || !take_u8(&op)) {
        return Err("wire: truncated control frame");
      }
      if (op > static_cast<uint8_t>(ControlKind::kStop)) {
        return Err("wire: unknown control op ", std::to_string(op));
      }
      nf.op = static_cast<ControlKind>(op);
      break;
    }
    case static_cast<uint8_t>(FrameKind::kAck): {
      nf.kind = FrameKind::kAck;
      if (payload_len != 1 + 1 + 4) return Err("wire: bad ack frame size");
      uint8_t op = 0;
      if (!take_u8(&op) || !r.GetU32(&nf.frames)) {
        return Err("wire: truncated ack frame");
      }
      if (op > static_cast<uint8_t>(ControlKind::kStop)) {
        return Err("wire: unknown ack op ", std::to_string(op));
      }
      nf.op = static_cast<ControlKind>(op);
      break;
    }
    case static_cast<uint8_t>(FrameKind::kQuiesce): {
      nf.kind = FrameKind::kQuiesce;
      if (payload_len != 1 + 1 + 8 + 8) {
        return Err("wire: bad quiesce frame size");
      }
      if (!take_u8(&nf.is_reply) || !r.GetU64(&nf.queued_total) ||
          !r.GetU64(&nf.done_total)) {
        return Err("wire: truncated quiesce frame");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kSinkMatch): {
      nf.kind = FrameKind::kSinkMatch;
      if (!r.GetU32(&nf.query) || !r.GetU64(&nf.trace.trace_id) ||
          !r.GetU64(&nf.trace.sent_us)) {
        return Err("wire: truncated sink-match header");
      }
      uint32_t num_events = 0;
      if (!r.GetU32(&num_events)) {
        return Err("wire: truncated sink-match header");
      }
      if (static_cast<uint64_t>(num_events) * kEventBodyBytes !=
          frame_end - r.pos) {
        return Err("wire: sink match declares ", std::to_string(num_events),
                   " events but carries ", std::to_string(frame_end - r.pos),
                   " body bytes");
      }
      nf.match.events.resize(num_events);
      for (uint32_t i = 0; i < num_events; ++i) {
        if (!GetEventBody(&r, &nf.match.events[i])) {
          return Err("wire: truncated sink-match event ", std::to_string(i));
        }
      }
      nf.match.RecomputeSpan();
      break;
    }
    case static_cast<uint8_t>(FrameKind::kHello): {
      nf.kind = FrameKind::kHello;
      if (payload_len != 1 + 4 + 4) return Err("wire: bad hello frame size");
      if (!r.GetU32(&nf.process) || !r.GetU32(&nf.listen_port)) {
        return Err("wire: truncated hello frame");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kPeers): {
      nf.kind = FrameKind::kPeers;
      if (!r.GetU64(&nf.coord_now_us)) {
        return Err("wire: truncated peers frame");
      }
      uint32_t count = 0;
      if (!r.GetU32(&count)) return Err("wire: truncated peers frame");
      // Entries are variable-length (per-peer host string), so the only
      // possible size check is a lower bound up front plus the shared
      // trailing-bytes check at the end.
      if (static_cast<uint64_t>(count) * (4 + 1) > frame_end - r.pos) {
        return Err("wire: peers frame declares ", std::to_string(count),
                   " peers but carries only ",
                   std::to_string(frame_end - r.pos), " body bytes");
      }
      nf.peer_ports.resize(count);
      nf.peer_hosts.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t host_len = 0;
        if (!r.GetU32(&nf.peer_ports[i]) || !take_u8(&host_len)) {
          return Err("wire: truncated peers frame");
        }
        if (host_len > frame_end - r.pos) {
          return Err("wire: truncated peers host ", std::to_string(i));
        }
        nf.peer_hosts[i].assign(reinterpret_cast<const char*>(data + r.pos),
                                host_len);
        r.pos += host_len;
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kReady): {
      nf.kind = FrameKind::kReady;
      if (payload_len != 1 + 4) return Err("wire: bad ready frame size");
      if (!r.GetU32(&nf.process)) return Err("wire: truncated ready frame");
      break;
    }
    case static_cast<uint8_t>(FrameKind::kStats): {
      nf.kind = FrameKind::kStats;
      uint32_t count = 0;
      if (!r.GetU32(&count)) return Err("wire: truncated stats frame");
      if (static_cast<uint64_t>(count) * (1 + 4 + 8) != frame_end - r.pos) {
        return Err("wire: stats frame declares ", std::to_string(count),
                   " entries but carries ", std::to_string(frame_end - r.pos),
                   " body bytes");
      }
      nf.stats.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        StatEntry& s = nf.stats[i];
        if (!take_u8(&s.stat) || !r.GetU32(&s.index) || !r.GetU64(&s.value)) {
          return Err("wire: truncated stats entry ", std::to_string(i));
        }
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kSpan): {
      nf.kind = FrameKind::kSpan;
      if (payload_len != 1 + 8 + 1 + 4 + 4 + 4 + 4 + 8 + 8) {
        return Err("wire: bad span frame size");
      }
      if (!r.GetU64(&nf.span_trace_id) || !take_u8(&nf.span_kind) ||
          !r.GetU32(&nf.span_node) || !r.GetI32(&nf.span_task) ||
          !r.GetU32(&nf.span_peer) || !r.GetI32(&nf.span_query) ||
          !r.GetU64(&nf.span_start_us) || !r.GetU64(&nf.span_dur_us)) {
        return Err("wire: truncated span frame");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kBye): {
      nf.kind = FrameKind::kBye;
      if (payload_len != 1 + 1) return Err("wire: bad bye frame size");
      if (!take_u8(&nf.bye_code)) return Err("wire: truncated bye frame");
      break;
    }
    case static_cast<uint8_t>(FrameKind::kMigrate): {
      nf.kind = FrameKind::kMigrate;
      if (payload_len != 1 + 8 + 8 + 8 + 4) {
        return Err("wire: bad migrate frame size");
      }
      if (!r.GetU64(&nf.migration_id) || !r.GetU64(&nf.barrier_ms) ||
          !r.GetU64(&nf.horizon_ms) || !r.GetU32(&nf.state_chunks)) {
        return Err("wire: truncated migrate frame");
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::kStateChunk): {
      nf.kind = FrameKind::kStateChunk;
      if (!r.GetU64(&nf.migration_id) || !r.GetU32(&nf.state_node)) {
        return Err("wire: truncated state-chunk header");
      }
      uint32_t num_events = 0;
      if (!r.GetU32(&num_events)) {
        return Err("wire: truncated state-chunk header");
      }
      if (static_cast<uint64_t>(num_events) * kEventBodyBytes !=
          frame_end - r.pos) {
        return Err("wire: state chunk declares ", std::to_string(num_events),
                   " events but carries ", std::to_string(frame_end - r.pos),
                   " body bytes");
      }
      nf.state_events.resize(num_events);
      for (uint32_t i = 0; i < num_events; ++i) {
        if (!GetEventBody(&r, &nf.state_events[i])) {
          return Err("wire: truncated state-chunk event ", std::to_string(i));
        }
      }
      break;
    }
    default:
      return Err("wire: unknown frame kind ", std::to_string(kind_byte));
  }
  if (r.pos != frame_end) {
    return Err("wire: ", std::to_string(frame_end - r.pos),
               " trailing bytes inside frame");
  }
  *consumed = frame_end;
  return nf;
}

void FrameAssembler::Feed(const char* data, size_t n) {
  if (poisoned_) return;
  buf_.append(data, n);
}

bool FrameAssembler::Next(std::string* frame) {
  if (poisoned_) return false;
  // Compact lazily: move the unconsumed tail to the front only once the
  // dead prefix dominates, keeping Feed/Next amortized O(bytes).
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (1u << 16))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < 4) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf_.data()) + pos_;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  // A structurally impossible prefix can never be resynced past — any
  // resync heuristic would depend on payload bytes, i.e. on how the
  // stream happened to be segmented. Poison deterministically instead.
  if (payload_len == 0) {
    poisoned_ = true;
    error_ = "wire stream: empty frame (payload_len 0)";
    return false;
  }
  if (payload_len > kMaxFramePayloadBytes) {
    poisoned_ = true;
    error_ = "wire stream: oversized frame (payload_len " +
             std::to_string(payload_len) + " > cap " +
             std::to_string(kMaxFramePayloadBytes) + ")";
    return false;
  }
  const size_t total = 4 + static_cast<size_t>(payload_len);
  if (buf_.size() - pos_ < total) return false;
  frame->assign(buf_, pos_, total);
  pos_ += total;
  ++frames_out_;
  return true;
}

Result<std::vector<DecodedFrame>> DecodePacket(const std::string& bytes) {
  std::vector<DecodedFrame> frames;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t consumed = 0;
    Result<DecodedFrame> frame =
        DecodeFrame(data + pos, bytes.size() - pos, &consumed);
    if (!frame.ok()) return frame.error();
    frames.push_back(std::move(frame).value());
    pos += consumed;
  }
  return frames;
}

}  // namespace muse::rt
