#ifndef MUSE_RT_EXECUTOR_H_
#define MUSE_RT_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cep/evaluator.h"
#include "src/dist/deployment.h"
#include "src/dist/node_runtime.h"
#include "src/obs/trace.h"
#include "src/rt/transport.h"

namespace muse::rt {

/// Eviction horizon substituted when a caller leaves
/// `EvaluatorOptions::eviction_slack_ms` at 0: large enough that no
/// partial match is ever evicted before the final flush (see
/// RtOptions::eval for why finite slacks break the determinism contract
/// under real threading).
constexpr uint64_t kUnboundedEvictionSlackMs = 1ULL << 60;

/// Per-link batch of encoded frames owned by one sending thread. Frames
/// accumulate until `batch_max_frames`, then flush as one packet; the
/// owner also force-flushes after each unit of work so batching never
/// holds a frame across an idle period.
///
/// Worker threads flush packets with TryDeliver and keep rejected packets
/// in a per-link FIFO spill (credit order is preserved per link); the
/// source driver flushes blocking. See Transport for the deadlock-freedom
/// argument.
class LinkBatcher {
 public:
  LinkBatcher(NodeId src, Transport* transport,
              const RtTransportOptions& options, bool blocking)
      : src_(src),
        transport_(transport),
        options_(options),
        blocking_(blocking) {}

  void Add(NodeId dst, const char* frame, size_t frame_bytes);
  void FlushAll();

  /// One pass over the spill queues; returns true when all are empty.
  bool FlushSpill();

  bool spill_empty() const { return spill_.empty(); }

 private:
  struct Batch {
    std::string bytes;
    uint32_t frames = 0;
  };

  void FlushLink(NodeId dst);

  NodeId src_;
  Transport* transport_;
  RtTransportOptions options_;
  bool blocking_;
  std::map<NodeId, Batch> batches_;
  std::map<NodeId, std::deque<Packet>> spill_;
};

/// The worker side of the runtime, split out of RtRuntime so that a
/// muse_node daemon can run the exact same evaluation loop against a
/// socket-backed transport: one thread per transport shard drains the
/// shard's local inboxes, feeds frames into the NodeRuntimes, and routes
/// derived outputs back through the transport. Everything that differs
/// between the single-process runtime and a cluster daemon — where sink
/// matches go, who counts flush acks, whether drift is observed — is
/// injected through `Hooks`.
class RtExecutor {
 public:
  struct Hooks {
    /// Called for every sink emission (replay excluded). Returns true when
    /// the match was newly accepted (first emission — closes the trace
    /// with a kEmit span). A daemon ships the match to the coordinator and
    /// returns true unconditionally; dedup then happens at the collector.
    std::function<bool(int query, const Match& m, uint64_t trace_id)>
        record_match;

    /// Called once per node reaching a flush-barrier phase
    /// (kFlushCollect / kFlushEmit).
    std::function<void(ControlKind kind)> ack;

    /// Rate-drift observation of non-replayed task outputs; leave empty to
    /// disable (cluster daemons must: their observations could never reach
    /// the coordinator's detector).
    std::function<void(int task, uint64_t max_time)> observe_output;
  };

  /// `eval.eviction_slack_ms == 0` is widened to
  /// kUnboundedEvictionSlackMs. `trace_spans_per_shard == 0` disables
  /// span recording.
  RtExecutor(const Deployment& dep, EvaluatorOptions eval,
             const RtTransportOptions& transport_options,
             Transport* transport, obs::MetricsRegistry* registry,
             Hooks hooks, size_t trace_spans_per_shard);

  /// Spawns one worker thread per transport shard. Workers run until a
  /// kStop control reaches every local node (push one per node, then
  /// Join).
  void Start();
  void Join();

  std::vector<NodeRuntime>& nodes() { return nodes_; }
  const std::vector<NodeRuntime>& nodes() const { return nodes_; }

  /// Per-shard single-writer span sinks; drain only after Join.
  const std::vector<std::unique_ptr<obs::SpanBuffer>>& span_buffers() const {
    return span_bufs_;
  }

  uint64_t NodeInputs(NodeId n) const { return node_inputs_[n]->Value(); }
  uint64_t NodeNetFrames(NodeId n) const {
    return node_net_frames_[n]->Value();
  }
  uint64_t NodeNetBytes(NodeId n) const {
    return node_net_bytes_[n]->Value();
  }
  uint64_t NodeCrashes(NodeId n) const { return node_crashes_[n]->Value(); }
  uint64_t WireRejects() const { return wire_rejects_->Value(); }
  /// Columnar inbox batches drained / rows they carried (0 when
  /// `RtTransportOptions::batch_inbox` is off or no events flowed).
  uint64_t BatchesDrained() const { return rt_batches_->Value(); }
  uint64_t BatchRows() const { return rt_batch_rows_->Value(); }

 private:
  void WorkerMain(int shard);
  void HandleFrame(NodeId node, const DecodedFrame& frame,
                   LinkBatcher* batcher, const Packet& packet,
                   uint64_t pop_us, obs::SpanBuffer* spans);
  /// Evaluates and drains an accumulated columnar event batch for `node`
  /// (no-op when empty). Outputs route exactly as the per-frame path would
  /// have routed them.
  void FlushEventBatch(NodeId node, EventBatch* batch, LinkBatcher* batcher);
  void HandleCrash(NodeId node, LinkBatcher* batcher);
  void RouteOutputs(NodeId node, const std::vector<NodeRuntime::Output>& outs,
                    LinkBatcher* batcher, bool replay = false,
                    uint64_t trace_id = 0, obs::SpanBuffer* spans = nullptr);
  void RecordEvalSpan(obs::SpanBuffer* spans, uint64_t trace_id, NodeId node,
                      int task, uint64_t start_us);

  const Deployment& dep_;
  RtTransportOptions transport_options_;
  Transport* transport_;
  Hooks hooks_;
  std::vector<NodeRuntime> nodes_;
  std::vector<std::vector<NodeRuntime::Output>> flush_stash_;
  std::vector<std::thread> workers_;

  std::vector<obs::Counter*> node_inputs_;
  std::vector<obs::Counter*> node_net_frames_;
  std::vector<obs::Counter*> node_net_bytes_;
  std::vector<obs::Counter*> node_crashes_;
  obs::Counter* wire_rejects_ = nullptr;
  obs::Counter* rt_batches_ = nullptr;
  obs::Counter* rt_batch_rows_ = nullptr;
  std::vector<std::unique_ptr<obs::SpanBuffer>> span_bufs_;
};

}  // namespace muse::rt

#endif  // MUSE_RT_EXECUTOR_H_
