#ifndef MUSE_RT_CLUSTER_H_
#define MUSE_RT_CLUSTER_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cep/evaluator.h"
#include "src/common/result.h"
#include "src/dist/deployment.h"
#include "src/rt/transport.h"

namespace muse::rt {

/// Everything a muse_node daemon needs to join a cluster: its identity,
/// where the coordinator listens, and the runtime knobs the coordinator
/// wants mirrored on every process (muse_node's flag parser fills this).
struct DaemonConfig {
  int process = 0;    ///< this daemon's index in [0, processes)
  int processes = 1;  ///< daemon count P
  int coord_port = 0; ///< coordinator's localhost listen port
  int num_threads = 0;
  RtTransportOptions transport;
  EvaluatorOptions eval;
  uint64_t trace_sample_every = 0;
  size_t trace_max_spans = 1 << 16;

  /// Coordinator only: per-daemon host strings for the kPeers directory
  /// (spec `peer <k> <host>` lines). Missing or empty entries mean
  /// 127.0.0.1. Daemons dial each mesh peer at its advertised host;
  /// launch and coordinator discovery stay localhost — this is the wire
  /// and directory slice of multi-host support, not remote spawning.
  std::vector<std::string> peer_hosts;
};

/// Handshake protocol (all frames from wire.h, length-prefixed over
/// blocking localhost TCP):
///   1. coordinator listens; spawns P muse_node daemons with --coord-port
///   2. each daemon binds its own listener, dials the coordinator, sends
///      kHello{process, listen_port}
///   3. coordinator sends every daemon kPeers{coord_now_us, ports[P]} —
///      the clock reference all daemons re-anchor to (SyncClock)
///   4. daemon k dials daemons j < k (sending kHello{k, 0}) and accepts
///      daemons j > k — a full mesh with one connection per pair
///   5. each daemon sends kReady; the coordinator unblocks when it holds
///      all P
/// After that every socket switches to the non-blocking NetTransport
/// regime; the run ends with kStop controls, kStats/kSpan exports, and a
/// kBye per daemon.
class ClusterHandle {
 public:
  ~ClusterHandle();

  /// Child pids indexed by daemon process index.
  const std::vector<pid_t>& pids() const { return pids_; }
  /// Connected coordinator<->daemon sockets, indexed by process index.
  /// Ownership transfers to the NetTransport built on top.
  const std::vector<int>& daemon_fds() const { return daemon_fds_; }
  /// The instant the kPeers clock reference was 0: feed
  /// `SinceEpochUs()` to Transport::SyncClock so the coordinator's
  /// transport clock matches what the daemons adopted.
  uint64_t SinceEpochUs() const;

  void KillAll(int sig);
  /// waitpid()s every child, escalating to SIGKILL after `timeout_ms`.
  /// Returns the number of children that had to be killed.
  int ReapAll(uint64_t timeout_ms);

  /// The mkdtemp scratch directory the spec/plan slices were staged in.
  /// LaunchCluster removes it eagerly (right after every daemon checked
  /// in, having already loaded its files) — so a later SIGKILL of the
  /// coordinator leaks nothing under /tmp. The path stays recorded here
  /// so tests can assert the directory is really gone.
  const std::string& temp_dir() const { return temp_dir_; }

 private:
  friend Result<std::unique_ptr<ClusterHandle>> LaunchCluster(
      const std::string& muse_node_bin, const std::string& spec_text,
      const std::string& plan_json, const DaemonConfig& daemon_template);

  std::vector<pid_t> pids_;
  std::vector<int> daemon_fds_;
  std::string temp_dir_;
  std::vector<std::string> temp_files_;
  std::chrono::steady_clock::time_point clock_epoch_;
  bool reaped_ = false;
};

/// Coordinator side: writes the spec/plan slice files, forks+execs P
/// muse_node daemons, and runs the handshake above. `daemon_template`
/// carries the runtime knobs to mirror (its process/coord_port fields are
/// ignored). On error the partial cluster is torn down.
Result<std::unique_ptr<ClusterHandle>> LaunchCluster(
    const std::string& muse_node_bin, const std::string& spec_text,
    const std::string& plan_json, const DaemonConfig& daemon_template);

/// Locates the muse_node binary: `hint` if non-empty, else next to
/// /proc/self/exe, else ../tools/muse_node from there, else the
/// MUSE_NODE_BIN environment variable. Empty string when not found.
std::string FindMuseNodeBinary(const std::string& hint);

/// Daemon side: the whole muse_node lifecycle after the deployment has
/// been recompiled from its spec+plan slice — dial, mesh, execute until
/// kStop, export stats and spans, kBye. Returns the process exit code
/// (0 clean, 3 wedged).
int RunMuseNodeDaemon(const Deployment& dep, const DaemonConfig& config);

}  // namespace muse::rt

#endif  // MUSE_RT_CLUSTER_H_
