#include "src/rt/runtime.h"

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/adapt/plan_diff.h"
#include "src/adapt/state_transfer.h"
#include "src/cep/match_dedup.h"
#include "src/cep/oracle.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/dist/node_runtime.h"
#include "src/rt/cluster.h"
#include "src/rt/executor.h"
#include "src/rt/net_transport.h"
#include "src/rt/wire.h"

namespace muse::rt {
namespace {

class RtRun {
 public:
  RtRun(const Deployment& dep, const RtOptions& options)
      : dep_(dep),
        options_(options),
        telemetry_(std::make_shared<obs::RunTelemetry>()) {
    NodeId max_node = 0;
    for (const Task& t : dep_.tasks()) max_node = std::max(max_node, t.node);
    num_nodes_ = static_cast<size_t>(max_node) + 1;
    // Adaptive runs size the transport for the whole network up front —
    // executors derive their node vectors from the transport, so every
    // later plan generation covers the same node space.
    num_nodes_ = std::max(num_nodes_, options_.min_nodes);
    num_shards_ = options_.num_threads <= 0
                      ? static_cast<int>(num_nodes_)
                      : std::min<int>(options_.num_threads,
                                      static_cast<int>(num_nodes_));

    obs::MetricsRegistry& reg = telemetry_->registry;
    // Sink dedup horizons mirror the simulator's: window + 4*slack of
    // match time, past which no live state can regenerate a match. With
    // the default unbounded slack the horizon is never reached, so the
    // sets degenerate to the old remember-everything behavior and the
    // determinism contract is untouched.
    EvaluatorOptions eval = options_.eval;
    if (eval.eviction_slack_ms == 0) {
      eval.eviction_slack_ms = kUnboundedEvictionSlackMs;
    }
    std::vector<uint64_t> horizon(static_cast<size_t>(dep_.num_queries()),
                                  MatchDedupSet::kNoHorizon);
    for (const Task& t : dep_.tasks()) {
      for (int q : t.sink_for) {
        if (t.target.window() != kNoWindow) {
          horizon[static_cast<size_t>(q)] =
              t.target.window() + 4 * eval.eviction_slack_ms;
        }
      }
    }
    for (int q = 0; q < dep_.num_queries(); ++q) {
      auto col = std::make_unique<QueryCollector>();
      col->seen = MatchDedupSet(horizon[static_cast<size_t>(q)]);
      const obs::LabelSet labels{{"query", std::to_string(q)}};
      col->latency = reg.GetHistogram("rt_latency_ms", labels, 1e-3);
      col->total = reg.GetCounter("rt_matches_total", labels);
      collectors_.push_back(std::move(col));
    }
    source_skipped_ = reg.GetCounter("rt_source_skipped_events_total");

    sampler_ = obs::TraceSampler(options_.trace_sample_every);
    if (sampler_.enabled()) {
      driver_spans_ = std::make_unique<obs::SpanBuffer>(
          options_.trace_max_spans_per_thread);
      trace_sampled_ = reg.GetCounter("rt_trace_sampled_total");
    }
  }

  RtReport Run(const std::vector<Event>& trace) {
    report_.source_events = trace.size();
    report_.matches_per_query.resize(
        static_cast<size_t>(dep_.num_queries()));
    inject_us_.assign(trace.size(), 0);
    if (options_.transport_kind == RtTransportKind::kCluster) {
      return RunCluster(trace);
    }
    return RunLocal(trace);
  }

 private:
  struct QueryCollector {
    std::mutex mu;
    MatchDedupSet seen;
    std::vector<Match> matches;
    obs::Histogram* latency = nullptr;
    obs::Counter* total = nullptr;
  };

  // --- single-process modes (in-proc and loopback TCP) -----------------

  RtReport RunLocal(const std::vector<Event>& trace) {
    const auto wall_start = std::chrono::steady_clock::now();
    obs::MetricsRegistry& reg = telemetry_->registry;
    if (options_.transport_kind == RtTransportKind::kInProc) {
      transport_ = std::make_unique<InProcTransport>(
          num_nodes_, num_shards_, options_.transport, &reg);
    } else {
      Result<std::unique_ptr<NetTransport>> lb = NetTransport::Loopback(
          num_nodes_, num_shards_, options_.transport, &reg);
      MUSE_CHECK(lb.ok(), "loopback transport setup failed");
      transport_ = std::move(lb.value());
    }

    // The trace horizon in virtual ms; traces are time-sorted, so the
    // last event carries it.
    trace_duration_ms_ = trace.empty() ? 0 : trace.back().time + 1;
    adapt_enabled_ = options_.adapt != nullptr;
    InstallDrift(*live_dep_, /*valid_from_ms=*/0);
    if (sampler_.enabled()) span_log_ = std::make_shared<obs::TraceLog>();

    hooks_.record_match = [this](int query, const Match& m,
                                 uint64_t trace_id) {
      return RecordMatch(query, m, trace_id);
    };
    hooks_.ack = [this](ControlKind kind) {
      (kind == ControlKind::kFlushCollect ? flush_acks_ : emit_acks_)
          .fetch_add(1, std::memory_order_release);
    };
    if (drift_ != nullptr || adapt_enabled_) {
      // Reads drift_ at call time: migrations swap the detector between
      // executor generations (workers joined), never under a live worker.
      hooks_.observe_output = [this](int task, uint64_t max_time) {
        if (drift_ != nullptr) drift_->ObserveTaskOutput(task, max_time);
      };
    }
    StartExecutor();
    std::thread driver([this, &trace] { DriverMain(trace); });
    driver.join();
    WaitQuiesce();

    FlushBarrier();
    for (NodeId n = 0; n < num_nodes_; ++n) {
      transport_->PushControl(n, ControlKind::kStop);
    }
    executor_->Join();
    report_.wedged = transport_->wedged();

    FinishTelemetryLocal(*executor_);
    FinishTelemetryCommon();
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    BuildReportLocal(*executor_);
    BuildReportCommon();
    return std::move(report_);
  }

  /// (Re)creates the drift detector for `dep`'s planner snapshot. On a
  /// migration the outgoing detector's verdict up to the barrier is folded
  /// into the sticky run-level maxima first, and the fresh detector starts
  /// judging only at `valid_from_ms` — trace time before the barrier
  /// belongs to the previous plan's stream.
  void InstallDrift(const Deployment& dep, uint64_t valid_from_ms) {
    if (drift_ != nullptr) {
      const obs::RateDriftDetector::Report r =
          drift_->ReportUpTo(valid_from_ms);
      drift_floor_score_ = std::max(drift_floor_score_, r.drift_score);
      drift_floor_flag_ = drift_floor_flag_ || r.drifted;
    }
    drift_.reset();
    if (!options_.drift.enabled || dep.planner_rates().empty() ||
        trace_duration_ms_ == 0) {
      return;
    }
    obs::DriftOptions dopts = options_.drift;
    dopts.valid_from_ms = valid_from_ms;
    drift_ = std::make_unique<obs::RateDriftDetector>(
        dep.planner_rates(), trace_duration_ms_, dopts);
  }

  void StartExecutor() {
    executor_ = std::make_unique<RtExecutor>(
        *live_dep_, options_.eval, options_.transport, transport_.get(),
        &telemetry_->registry, hooks_,
        sampler_.enabled() ? options_.trace_max_spans_per_thread : 0);
    executor_->Start();
  }

  // --- multi-process mode ----------------------------------------------

  RtReport RunCluster(const std::vector<Event>& trace) {
    const auto wall_start = std::chrono::steady_clock::now();
    obs::MetricsRegistry& reg = telemetry_->registry;
    const int processes = std::max(1, options_.processes);

    DaemonConfig tmpl;
    tmpl.processes = processes;
    tmpl.num_threads = options_.num_threads;
    tmpl.transport = options_.transport;
    tmpl.eval = options_.eval;
    tmpl.trace_sample_every = options_.trace_sample_every;
    tmpl.trace_max_spans = options_.trace_max_spans_per_thread;
    tmpl.peer_hosts = options_.cluster_peer_hosts;
    Result<std::unique_ptr<ClusterHandle>> launched =
        LaunchCluster(options_.muse_node_bin, options_.cluster_spec_text,
                      options_.cluster_plan_json, tmpl);
    if (!launched.ok()) {
      std::fprintf(stderr, "rt cluster launch failed: %s\n",
                   launched.error().message.c_str());
      report_.wedged = true;
      return std::move(report_);
    }
    cluster_ = std::move(launched.value());

    if (sampler_.enabled()) {
      cluster_spans_ = std::make_unique<obs::SpanBuffer>(
          options_.trace_max_spans_per_thread *
          static_cast<size_t>(processes));
    }
    NetTransport::Setup setup;
    setup.role = NetTransport::Role::kCoordinator;
    setup.processes = processes;
    setup.peer_fds = cluster_->daemon_fds();
    setup.num_nodes = num_nodes_;
    setup.num_shards = 1;
    setup.options = options_.transport;
    setup.callbacks.on_ack = [this](ControlKind kind, uint32_t count) {
      (kind == ControlKind::kFlushCollect ? flush_acks_ : emit_acks_)
          .fetch_add(count, std::memory_order_release);
    };
    setup.callbacks.on_sink_match = [this](int query, const Match& m,
                                           uint64_t trace_id) {
      RecordMatch(query, m, trace_id);
    };
    setup.callbacks.on_stats =
        [this](const std::vector<StatEntry>& stats) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          daemon_stats_.insert(daemon_stats_.end(), stats.begin(),
                               stats.end());
        };
    setup.callbacks.on_span = [this](const obs::TraceSpan& span) {
      if (cluster_spans_ != nullptr) cluster_spans_->Record(span);
    };
    auto net_owned =
        std::make_unique<NetTransport>(std::move(setup), &reg);
    NetTransport* net = net_owned.get();
    transport_ = std::move(net_owned);
    // Daemons adopted the coordinator's clock from the kPeers frame; the
    // coordinator itself re-anchors to the same reference.
    transport_->SyncClock(cluster_->SinceEpochUs());

    std::thread killer;
    if (!options_.kill_schedule.empty()) {
      killer = std::thread([this] { KillerMain(); });
    }

    DriverMain(trace);
    WaitQuiesce();
    FlushBarrier();

    for (NodeId n = 0; n < num_nodes_; ++n) {
      transport_->PushControl(n, ControlKind::kStop);
    }
    std::string bye;
    AppendByeFrame(0, &bye);
    for (int p = 0; p < processes; ++p) net->SendFrameToPeer(p, bye);
    // Each daemon ships kStats, its spans, and a kBye after its workers
    // join — wait for all byes so those exports are in before teardown.
    const auto bye_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!transport_->wedged() && net->ByesReceived() < processes &&
           std::chrono::steady_clock::now() < bye_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    run_done_.store(true, std::memory_order_release);
    if (killer.joinable()) killer.join();
    report_.wedged = transport_->wedged();
    net->Shutdown();
    if (report_.wedged) cluster_->KillAll(SIGKILL);
    cluster_->ReapAll(2000);

    FinishTelemetryCluster();
    FinishTelemetryCommon();
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    BuildReportCluster();
    BuildReportCommon();
    return std::move(report_);
  }

  void KillerMain() {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::pair<int, uint64_t>> schedule = options_.kill_schedule;
    std::sort(schedule.begin(), schedule.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (const auto& [process, delay_ms] : schedule) {
      while (!run_done_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() <
                 start + std::chrono::milliseconds(delay_ms)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // A run that finished before the scheduled time keeps its daemons.
      if (run_done_.load(std::memory_order_acquire)) return;
      if (process >= 0 &&
          process < static_cast<int>(cluster_->pids().size())) {
        kill(cluster_->pids()[static_cast<size_t>(process)], SIGKILL);
      }
    }
  }

  // --- shared orchestration --------------------------------------------

  /// Quiescence over GlobalCounts: done when two consecutive probes agree
  /// on queued == done with no movement in between (per-process counters
  /// are sampled at different instants, so a single probe can transiently
  /// read equal sums mid-flight). In-flight work that makes no progress
  /// for the whole wedge timeout means some packet can never be delivered
  /// (worker spill queues retry continuously, so a stuck counter is a
  /// stuck packet, not a slow one).
  void WaitQuiesce() {
    const uint64_t timeout_us = options_.transport.wedge_timeout_ms * 1000;
    uint64_t last_q = 0;
    uint64_t last_d = 0;
    bool have_last = false;
    auto stagnant_since = std::chrono::steady_clock::now();
    for (;;) {
      if (transport_->wedged()) return;
      const auto [q, d] = transport_->GlobalCounts();
      if (transport_->wedged()) return;
      const bool unchanged = have_last && q == last_q && d == last_d;
      if (unchanged && q == d) return;
      if (!unchanged) {
        stagnant_since = std::chrono::steady_clock::now();
      } else if (timeout_us != 0 &&
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - stagnant_since)
                         .count()) >= timeout_us) {
        transport_->MarkWedged();
        return;
      }
      last_q = q;
      last_d = d;
      have_last = true;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  void WaitAcks(const std::atomic<size_t>* acks) const {
    while (acks->load(std::memory_order_acquire) < num_nodes_) {
      if (transport_->wedged()) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  /// Final flush, two-phase to mirror the simulator exactly: every node
  /// stashes its pending NSEQ candidates *before* any of them is routed,
  /// so late flush outputs delivered to an already-flushed evaluator
  /// never gain a second flush.
  void FlushBarrier() {
    if (transport_->wedged()) return;
    for (NodeId n = 0; n < num_nodes_; ++n) {
      transport_->PushControl(n, ControlKind::kFlushCollect);
    }
    WaitAcks(&flush_acks_);
    if (transport_->wedged()) return;
    for (NodeId n = 0; n < num_nodes_; ++n) {
      transport_->PushControl(n, ControlKind::kFlushEmit);
    }
    WaitAcks(&emit_acks_);
    WaitQuiesce();
  }

  // --- live plan migration (muse-adapt) --------------------------------

  /// Driver-thread poll between source events: hand the adapt driver the
  /// drift verdict as of `now_ms` and migrate if it returns a new plan.
  void MaybeAdapt(uint64_t now_ms, LinkBatcher* batcher) {
    obs::RateDriftDetector::Report probe;
    if (drift_ != nullptr) probe = drift_->ReportUpTo(now_ms);
    const Deployment* next = options_.adapt->OnDriftReport(probe, now_ms);
    if (next == nullptr || next == live_dep_) return;
    MigrateTo(*next, now_ms, batcher);
  }

  /// Stops the current generation's workers with exactly one kStop per
  /// shard. A worker exits on the first kStop it pops, so one per *node*
  /// (the end-of-run pattern) could leave stale kStops in inboxes that
  /// would kill the next generation's workers on arrival.
  void StopAndJoinWorkers() {
    std::vector<bool> stopped(
        static_cast<size_t>(transport_->num_shards()), false);
    for (NodeId n : transport_->LocalNodes()) {
      const auto s = static_cast<size_t>(transport_->shard_of(n));
      if (stopped[s]) continue;
      stopped[s] = true;
      transport_->PushControl(n, ControlKind::kStop);
    }
    executor_->Join();
  }

  /// Folds the outgoing generation's per-node state into telemetry and
  /// the retained span log, then destroys it. Registry-backed executor
  /// counters (inputs, net frames/bytes, crashes) are shared across
  /// generations and accumulate on their own.
  void RetireExecutor() {
    ExportNodeTelemetry(*executor_);
    for (const NodeRuntime& nr : executor_->nodes()) {
      retired_dups_ += nr.DuplicatesDropped();
    }
    if (span_log_ != nullptr) {
      for (const auto& buf : executor_->span_buffers()) {
        span_log_->Absorb(*buf);
      }
    }
    executor_.reset();
  }

  /// The coordinated handoff: quiesce (no flush — a mid-run flush would
  /// emit NSEQ pendings early and change the match multiset), stop the
  /// workers, snapshot the replay-relevant source-log suffix, round-trip
  /// it through the v4 kMigrate/kStateChunk wire frames, install the new
  /// plan with a fresh executor and drift detector, and replay the state.
  /// Re-derived matches are absorbed by the sink dedup sets, whose horizon
  /// (window + 4*slack) strictly contains the replay horizon
  /// (window + slack) — the match multiset stays a pure function of the
  /// trace, which rt_adapt_differential_test pins against the simulator.
  void MigrateTo(const Deployment& next, uint64_t barrier_ms,
                 LinkBatcher* batcher) {
    obs::MetricsRegistry& reg = telemetry_->registry;
    const adapt::PlanDiff diff = adapt::DiffDeployments(*live_dep_, next);
    NodeId max_node = 0;
    for (const Task& t : next.tasks()) max_node = std::max(max_node, t.node);
    const bool fits = static_cast<size_t>(max_node) < num_nodes_;
    if (diff.no_op() || !diff.primitive_compatible || !diff.same_queries ||
        !fits) {
      ++report_.migration_aborts;
      reg.GetCounter("adapt_migrations_aborted_total")->Add(1);
      options_.adapt->OnMigrated(0, false);
      return;
    }
    const uint64_t t0 = transport_->NowUs();
    batcher->FlushAll();
    WaitQuiesce();
    if (transport_->wedged()) {
      ++report_.migration_aborts;
      reg.GetCounter("adapt_migrations_aborted_total")->Add(1);
      options_.adapt->OnMigrated(0, false);
      return;
    }
    StopAndJoinWorkers();

    // The replay horizon comes from the incoming plan; same workload, so
    // it equals the outgoing plan's (windows are query properties).
    const uint64_t slack = options_.eval.eviction_slack_ms == 0
                               ? kUnboundedEvictionSlackMs
                               : options_.eval.eviction_slack_ms;
    const uint64_t horizon = adapt::StateHorizonMs(next, slack);
    const adapt::MigrationState collected = adapt::CollectMigrationState(
        executor_->nodes(), ++migration_seq_, barrier_ms, horizon);
    // Round-trip through the wire frames even in-proc: the encode/decode
    // path is the one a cross-process migration would ride, and its byte
    // count is the telemetry of record (M905 bounds it).
    std::vector<std::string> state_frames;
    adapt::EncodeMigrationState(collected, 0, &state_frames);
    Result<adapt::MigrationState> decoded =
        adapt::DecodeMigrationState(state_frames);
    MUSE_CHECK(decoded.ok(), "migration state wire round-trip failed");
    const adapt::MigrationState state = std::move(decoded).value();
    report_.migration_state_events += state.TotalEvents();
    report_.migration_state_bytes += adapt::EncodedStateBytes(state_frames);

    RetireExecutor();
    live_dep_ = &next;
    InstallDrift(next, barrier_ms);
    StartExecutor();

    // Replay: untraced source frames to each event's origin, exactly as
    // the driver first injected them. inject_us_ keeps the original
    // injection time, so latency of matches completed after the handoff
    // honestly includes the migration pause.
    std::string frame;
    for (const adapt::MigrationState::NodeState& ns : state.nodes) {
      for (const Event& e : ns.events) {
        if (e.origin >= num_nodes_ ||
            live_dep_->PrimitiveTasksFor(e.origin, e.type).empty()) {
          continue;
        }
        frame.clear();
        AppendEventFrame(e, TraceContext{}, &frame);
        transport_->NoteFramesQueued(1);
        batcher->Add(e.origin, frame.data(), frame.size());
      }
    }
    batcher->FlushAll();
    WaitQuiesce();

    const uint64_t now = transport_->NowUs();
    const uint64_t pause_us = now > t0 ? now - t0 : 0;
    ++report_.migrations;
    report_.migration_pause_us.push_back(pause_us);
    reg.GetCounter("adapt_migrations_total")->Add(1);
    reg.GetCounter("adapt_state_events_total")->Add(state.TotalEvents());
    reg.GetCounter("adapt_state_bytes_total")
        ->Add(adapt::EncodedStateBytes(state_frames));
    reg.GetHistogram("adapt_migration_pause_us", {}, 1.0)
        ->Record(static_cast<double>(pause_us));
    options_.adapt->OnMigrated(pause_us, !transport_->wedged());
  }

  bool RecordMatch(int query, const Match& m, uint64_t trace_id) {
    (void)trace_id;  // the emitting executor records the kEmit span
    QueryCollector& col = *collectors_[static_cast<size_t>(query)];
    uint64_t injected = 0;
    for (const Event& e : m.events) {
      if (e.seq < inject_us_.size()) {
        injected = std::max(injected, inject_us_[e.seq]);
      }
    }
    const uint64_t now = transport_->NowUs();
    std::lock_guard<std::mutex> lock(col.mu);
    if (!col.seen.Accept(m)) return false;
    col.total->Add(1);
    col.latency->Record(
        now > injected ? static_cast<double>(now - injected) / 1000.0 : 0.0);
    if (options_.collect_matches) col.matches.push_back(m);
    return true;
  }

  // --- source driver ---------------------------------------------------

  void DriverMain(const std::vector<Event>& trace) {
    LinkBatcher batcher(0, transport_.get(), options_.transport,
                        /*blocking=*/true);
    std::vector<std::pair<NodeId, uint64_t>> failures = options_.failures;
    std::sort(failures.begin(), failures.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    size_t next_failure = 0;
    auto inject_failures_until = [&](uint64_t trace_time_ms) {
      while (next_failure < failures.size() &&
             failures[next_failure].second <= trace_time_ms) {
        const NodeId victim = failures[next_failure].first;
        ++next_failure;
        if (victim >= num_nodes_) continue;
        batcher.FlushAll();  // keep the crash ordered after sent events
        transport_->NoteFramesQueued(1);
        transport_->PushControl(victim, ControlKind::kCrash);
      }
    };

    Rng rng(options_.source_seed);
    const auto start = std::chrono::steady_clock::now();
    double next_arrival_s = 0;
    const uint64_t check_ms =
        std::max<uint64_t>(1, options_.adapt_check_interval_ms);
    uint64_t next_adapt_ms = check_ms;
    std::string frame;
    obs::SpanBuffer* spans = driver_spans_.get();
    for (const Event& e : trace) {
      if (transport_->wedged()) break;  // watchdog fired: stop injecting
      if (adapt_enabled_ && e.time >= next_adapt_ms) {
        while (next_adapt_ms <= e.time) next_adapt_ms += check_ms;
        MaybeAdapt(e.time, &batcher);
        if (transport_->wedged()) break;
      }
      inject_failures_until(e.time);
      // Drift sees every trace event — including ones no deployed task
      // consumes — because the snapshot's type rates describe the whole
      // generated stream, not the plan's subscription.
      if (drift_ != nullptr) drift_->ObserveType(e.type, e.time);
      if (e.origin >= num_nodes_ ||
          live_dep_->PrimitiveTasksFor(e.origin, e.type).empty()) {
        source_skipped_->Add(1);
        continue;
      }
      if (options_.source_rate_eps > 0) {
        next_arrival_s += rng.Exponential(options_.source_rate_eps);
        batcher.FlushAll();  // don't hold frames across the pacing sleep
        std::this_thread::sleep_until(
            start + std::chrono::duration<double>(next_arrival_s));
      }
      const uint64_t now = transport_->NowUs();
      if (e.seq < inject_us_.size()) inject_us_[e.seq] = now;
      const uint64_t trace_id = sampler_.TraceIdFor(e.seq);
      if (trace_id != 0 && spans != nullptr) {
        trace_sampled_->Add(1);
        obs::TraceSpan s;
        s.trace_id = trace_id;
        s.kind = obs::SpanKind::kIngest;
        s.node = e.origin;
        s.start_us = now;
        spans->Record(s);
      }
      frame.clear();
      AppendEventFrame(e, TraceContext{trace_id, now}, &frame);
      transport_->NoteFramesQueued(1);
      ++injected_;
      batcher.Add(e.origin, frame.data(), frame.size());
    }
    inject_failures_until(UINT64_MAX);
    batcher.FlushAll();
  }

  // --- end of run ------------------------------------------------------

  void FinishTelemetryLocal(RtExecutor& executor) {
    obs::MetricsRegistry& reg = telemetry_->registry;
    if (sampler_.enabled()) {
      // Workers and driver have joined: draining the single-writer
      // buffers is race-free by construction. span_log_ already holds the
      // spans of every retired executor generation.
      for (const auto& buf : executor.span_buffers()) {
        span_log_->Absorb(*buf);
      }
      span_log_->Absorb(*driver_spans_);
      report_.trace_log = span_log_;
    }
    if (drift_ != nullptr) {
      report_.drift_report = drift_->Finish();
      report_.drift_score = report_.drift_report.drift_score;
      report_.drifted = report_.drift_report.drifted;
      for (const auto& s : report_.drift_report.streams) {
        const obs::LabelSet labels{{"stream", s.label}};
        reg.GetGauge("rt_drift_score", labels)->Set(s.score);
        reg.GetGauge("rt_drift_observed_eps", labels)->Set(s.observed_eps);
        reg.GetGauge("rt_drift_expected_eps", labels)->Set(s.expected_eps);
      }
    }
    // Sticky across migrations: a drift verdict that triggered a replan
    // must survive into the final report even though each new plan starts
    // with a fresh (non-drifted) detector.
    report_.drift_score = std::max(report_.drift_score, drift_floor_score_);
    report_.drifted = report_.drifted || drift_floor_flag_;
    if (drift_ != nullptr || report_.migrations > 0) {
      reg.GetGauge("rt_drifted")->Set(report_.drifted ? 1.0 : 0.0);
      reg.GetGauge("rt_drift_score_max")->Set(report_.drift_score);
    }
    if (adapt_enabled_) {
      reg.GetGauge("adapt_replans_total")
          ->Set(static_cast<double>(options_.adapt->Replans()));
    }
    ExportNodeTelemetry(executor);
  }

  /// Per-node state export of one executor generation. Counters
  /// accumulate across generations; peak gauges take the max, watermark
  /// and live-state gauges are last-generation (each generation starts
  /// its filters fresh, so the final one is the live truth).
  void ExportNodeTelemetry(RtExecutor& executor) {
    obs::MetricsRegistry& reg = telemetry_->registry;
    std::vector<NodeRuntime>& nodes = executor.nodes();
    for (size_t n = 0; n < nodes.size(); ++n) {
      const std::string node_str = std::to_string(n);
      const obs::LabelSet node_labels{{"node", node_str}};
      reg.GetCounter("rt_node_dup_dropped_total", node_labels)
          ->Add(nodes[n].DuplicatesDropped());
      // Observed volatile-state peak, directly comparable against the
      // prove_state_bound gauge the static analyzer exports for this node.
      // Max-merged so the peak survives executor retirement on migration.
      obs::Gauge* peak_buffered =
          reg.GetGauge("rt_node_peak_buffered", node_labels);
      peak_buffered->Set(
          std::max(peak_buffered->Value(),
                   static_cast<double>(nodes[n].PeakBufferedMatches())));
      const ExactlyOnceFilter& filter = nodes[n].filter();
      obs::Gauge* pending_peak =
          reg.GetGauge("rt_filter_pending_peak", node_labels);
      pending_peak->Set(std::max(
          pending_peak->Value(),
          static_cast<double>(filter.PeakPendingAboveWatermark())));
      for (const auto& [src_task, watermark] : filter.Watermarks()) {
        reg.GetGauge("rt_filter_watermark",
                     obs::LabelSet{{"node", node_str},
                                   {"src", std::to_string(src_task)}})
            ->Set(static_cast<double>(watermark));
      }
      for (const auto& [task, counters] : nodes[n].task_counters()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("rt_task_inputs_total", labels)->Add(counters.inputs);
        reg.GetCounter("rt_task_outputs_total", labels)->Add(counters.outputs);
      }
      for (const auto& [task, stats] : nodes[n].EvaluatorStatsByTask()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("rt_evaluator_evictions_total", labels)
            ->Add(stats.evictions);
        reg.GetCounter("rt_evaluator_pending_released_total", labels)
            ->Add(stats.pending_released);
        obs::Gauge* peak_pending = reg.GetGauge("rt_task_peak_pending", labels);
        peak_pending->Set(std::max(peak_pending->Value(),
                                   static_cast<double>(stats.peak_pending)));
      }
    }
  }

  /// The cluster analogue: per-node state lives in the daemons, which
  /// exported it as kStats entries before their kBye; re-export on the
  /// coordinator's registry and fold into the report.
  void FinishTelemetryCluster() {
    obs::MetricsRegistry& reg = telemetry_->registry;
    if (sampler_.enabled()) {
      auto log = std::make_shared<obs::TraceLog>();
      log->Absorb(*driver_spans_);
      if (cluster_spans_ != nullptr) log->Absorb(*cluster_spans_);
      report_.trace_log = std::move(log);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const StatEntry& s : daemon_stats_) {
      const obs::LabelSet node_labels{{"node", std::to_string(s.index)}};
      switch (static_cast<NetStat>(s.stat)) {
        case NetStat::kNodeInputs:
          report_.inputs_processed += s.value;
          reg.GetCounter("rt_node_inputs_total", node_labels)->Add(s.value);
          break;
        case NetStat::kNodeNetFrames:
          report_.network_frames += s.value;
          reg.GetCounter("rt_net_out_frames_total", node_labels)
              ->Add(s.value);
          break;
        case NetStat::kNodeNetBytes:
          report_.network_bytes += s.value;
          reg.GetCounter("rt_net_out_bytes_total", node_labels)
              ->Add(s.value);
          break;
        case NetStat::kNodeCrashes:
          report_.crashes += s.value;
          reg.GetCounter("rt_crashes_total", node_labels)->Add(s.value);
          break;
        case NetStat::kNodeDupsDropped:
          report_.duplicates_dropped += s.value;
          reg.GetCounter("rt_node_dup_dropped_total", node_labels)
              ->Add(s.value);
          break;
        case NetStat::kNodePeakBuffered:
          reg.GetGauge("rt_node_peak_buffered", node_labels)
              ->Set(static_cast<double>(s.value));
          break;
        case NetStat::kStalls:
          report_.backpressure_stalls += s.value;
          break;
        case NetStat::kWireRejects:
          reg.GetCounter("rt_wire_rejected_frames_total")->Add(s.value);
          break;
        default:
          break;
      }
    }
  }

  void FinishTelemetryCommon() {
    obs::MetricsRegistry& reg = telemetry_->registry;
    if (report_.trace_log != nullptr) {
      reg.GetCounter("rt_trace_spans_total")
          ->Add(report_.trace_log->spans().size());
      reg.GetCounter("rt_trace_spans_dropped_total")
          ->Add(report_.trace_log->dropped());
    }
    for (size_t q = 0; q < collectors_.size(); ++q) {
      QueryCollector& col = *collectors_[q];
      std::lock_guard<std::mutex> lock(col.mu);
      const obs::LabelSet labels{{"query", std::to_string(q)}};
      reg.GetGauge("rt_sink_dedup_live", labels)
          ->Set(static_cast<double>(col.seen.live()));
      reg.GetGauge("rt_sink_dedup_peak", labels)
          ->Set(static_cast<double>(col.seen.peak_live()));
      reg.GetCounter("rt_sink_dup_matches_total", labels)
          ->Add(col.seen.duplicates());
      reg.GetCounter("rt_sink_dedup_compacted_total", labels)
          ->Add(col.seen.compacted());
    }
  }

  void BuildReportLocal(RtExecutor& executor) {
    // The registry-backed executor counters are shared across executor
    // generations, so the final generation reads cumulative totals.
    for (size_t n = 0; n < num_nodes_; ++n) {
      report_.inputs_processed += executor.NodeInputs(n);
      report_.network_frames += executor.NodeNetFrames(n);
      report_.network_bytes += executor.NodeNetBytes(n);
      report_.duplicates_dropped += executor.nodes()[n].DuplicatesDropped();
      report_.crashes += executor.NodeCrashes(n);
    }
    report_.duplicates_dropped += retired_dups_;
    report_.backpressure_stalls = transport_->Stalls();
  }

  void BuildReportCluster() {
    // Per-node totals already folded in FinishTelemetryCluster; add the
    // coordinator's own (driver-side) stalls.
    report_.backpressure_stalls += transport_->Stalls();
  }

  void BuildReportCommon() {
    report_.injected_events = injected_;
    report_.events_per_sec =
        report_.wall_seconds > 0
            ? static_cast<double>(injected_) / report_.wall_seconds
            : 0;
    obs::Histogram merged(1e-3);
    for (size_t q = 0; q < collectors_.size(); ++q) {
      merged.MergeFrom(*collectors_[q]->latency);
      report_.matches_per_query[q] =
          CanonicalMatchSet(std::move(collectors_[q]->matches));
    }
    report_.latency_ms = Distribution::FromHistogram(merged);
    telemetry_->registry.GetGauge("rt_wall_seconds")
        ->Set(report_.wall_seconds);
    report_.telemetry = telemetry_;
  }

  const Deployment& dep_;
  RtOptions options_;
  std::shared_ptr<obs::RunTelemetry> telemetry_;
  size_t num_nodes_ = 0;
  int num_shards_ = 1;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ClusterHandle> cluster_;

  // --- muse-adapt state (single-process modes only) --------------------
  /// The deployment currently installed; starts as &dep_ and advances on
  /// every live migration (the adapt driver owns all of them).
  const Deployment* live_dep_ = &dep_;
  std::unique_ptr<RtExecutor> executor_;
  RtExecutor::Hooks hooks_;
  /// Span sink surviving executor retirement (local modes; null unless
  /// sampling).
  std::shared_ptr<obs::TraceLog> span_log_;
  uint64_t trace_duration_ms_ = 0;
  bool adapt_enabled_ = false;
  uint64_t migration_seq_ = 0;
  uint64_t retired_dups_ = 0;
  double drift_floor_score_ = 0;
  bool drift_floor_flag_ = false;

  obs::Counter* source_skipped_ = nullptr;
  obs::TraceSampler sampler_;
  /// The driver's single-writer span sink (workers write the executor's;
  /// daemon spans arrive over the wire into cluster_spans_, written only
  /// by the coordinator's IO thread).
  std::unique_ptr<obs::SpanBuffer> driver_spans_;
  std::unique_ptr<obs::SpanBuffer> cluster_spans_;
  obs::Counter* trace_sampled_ = nullptr;
  std::unique_ptr<obs::RateDriftDetector> drift_;

  std::vector<std::unique_ptr<QueryCollector>> collectors_;
  std::vector<uint64_t> inject_us_;
  std::atomic<size_t> flush_acks_{0};
  std::atomic<size_t> emit_acks_{0};
  std::atomic<bool> run_done_{false};
  uint64_t injected_ = 0;

  std::mutex stats_mu_;
  std::vector<StatEntry> daemon_stats_;

  RtReport report_;
};

}  // namespace

std::string RtReport::Summary() const {
  std::string s;
  if (wedged) s += "RUN WEDGED (credit deadlock watchdog fired)\n";
  s += "events: " + std::to_string(source_events) + " (injected " +
       std::to_string(injected_events) + "), inputs processed: " +
       std::to_string(inputs_processed) + "\n";
  s += "network: " + std::to_string(network_frames) + " frames, " +
       std::to_string(network_bytes) + " bytes\n";
  s += "backpressure stalls: " + std::to_string(backpressure_stalls) +
       ", duplicates dropped: " + std::to_string(duplicates_dropped) +
       ", crashes: " + std::to_string(crashes) + "\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "throughput: %.0f events/s, wall %.3fs\n",
                events_per_sec, wall_seconds);
  s += buf;
  s += "latency (wall ms): " + latency_ms.ToString();
  if (!drift_report.streams.empty()) {
    std::snprintf(buf, sizeof(buf), "\ndrift: score %.3f, drifted %s",
                  drift_score, drifted ? "true" : "false");
    s += buf;
  }
  if (migrations > 0 || migration_aborts > 0) {
    s += "\nadapt: " + std::to_string(migrations) + " migrations (" +
         std::to_string(migration_aborts) + " rejected), state " +
         std::to_string(migration_state_events) + " events / " +
         std::to_string(migration_state_bytes) + " bytes";
  }
  if (trace_log != nullptr) {
    s += "\ntrace: " + std::to_string(trace_log->spans().size()) +
         " spans (" + std::to_string(trace_log->dropped()) + " dropped)";
  }
  return s;
}

RtRuntime::RtRuntime(const Deployment& deployment, const RtOptions& options)
    : deployment_(deployment), options_(options) {}

RtReport RtRuntime::Run(const std::vector<Event>& trace) {
  return RtRun(deployment_, options_).Run(trace);
}

}  // namespace muse::rt
