#include "src/rt/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "src/cep/match_dedup.h"
#include "src/cep/oracle.h"
#include "src/common/rng.h"
#include "src/dist/node_runtime.h"
#include "src/rt/wire.h"

namespace muse::rt {
namespace {

/// Eviction horizon used when the caller leaves `eval.eviction_slack_ms`
/// at 0: large enough that no partial match is ever evicted before the
/// final flush (see RtOptions::eval for why finite slacks break the
/// determinism contract under real threading).
constexpr uint64_t kUnboundedSlackMs = 1ULL << 60;

/// Per-link batch of encoded frames owned by one sending thread. Frames
/// accumulate until `batch_max_frames`, then flush as one packet; the
/// owner also force-flushes after each unit of work so batching never
/// holds a frame across an idle period.
///
/// Worker threads flush packets with TryDeliver and keep rejected packets
/// in a per-link FIFO spill (credit order is preserved per link); the
/// source driver flushes blocking. See Transport for the deadlock-freedom
/// argument.
class LinkBatcher {
 public:
  LinkBatcher(NodeId src, Transport* transport,
              const RtTransportOptions& options, bool blocking)
      : src_(src),
        transport_(transport),
        options_(options),
        blocking_(blocking) {}

  void Add(NodeId dst, const char* frame, size_t frame_bytes) {
    Batch& batch = batches_[dst];
    batch.bytes.append(frame, frame_bytes);
    ++batch.frames;
    if (batch.frames >= static_cast<uint32_t>(
                            std::max(1, options_.batch_max_frames))) {
      FlushLink(dst);
    }
  }

  void FlushAll() {
    for (auto& [dst, batch] : batches_) {
      if (batch.frames > 0) FlushLink(dst);
    }
  }

  /// One pass over the spill queues; returns true when all are empty.
  bool FlushSpill() {
    for (auto it = spill_.begin(); it != spill_.end();) {
      std::deque<Packet>& q = it->second;
      while (!q.empty() && transport_->TryDeliver(std::move(q.front()))) {
        q.pop_front();
      }
      it = q.empty() ? spill_.erase(it) : ++it;
    }
    return spill_.empty();
  }

  bool spill_empty() const { return spill_.empty(); }

 private:
  struct Batch {
    std::string bytes;
    uint32_t frames = 0;
  };

  void FlushLink(NodeId dst) {
    Batch& batch = batches_[dst];
    Packet packet;
    packet.src = src_;
    packet.dst = dst;
    // The blocking batcher is the source driver, which logically injects
    // *at* the origin node — no network hop, immediate delivery.
    packet.deliver_at_us =
        blocking_ ? transport_->NowUs() : transport_->DeliverAt(src_, dst);
    packet.frames = batch.frames;
    packet.bytes = std::move(batch.bytes);
    batch.bytes.clear();
    batch.frames = 0;
    if (blocking_) {
      transport_->DeliverBlocking(std::move(packet));
      return;
    }
    // FIFO per link: never overtake an already-spilled packet.
    std::deque<Packet>& q = spill_[dst];
    if (q.empty() && transport_->TryDeliver(std::move(packet))) {
      spill_.erase(dst);
      return;
    }
    q.push_back(std::move(packet));
  }

  NodeId src_;
  Transport* transport_;
  RtTransportOptions options_;
  bool blocking_;
  std::map<NodeId, Batch> batches_;
  std::map<NodeId, std::deque<Packet>> spill_;
};

class RtRun {
 public:
  RtRun(const Deployment& dep, const RtOptions& options)
      : dep_(dep),
        options_(options),
        telemetry_(std::make_shared<obs::RunTelemetry>()) {
    EvaluatorOptions eval = options_.eval;
    if (eval.eviction_slack_ms == 0) eval.eviction_slack_ms = kUnboundedSlackMs;

    NodeId max_node = 0;
    for (const Task& t : dep_.tasks()) max_node = std::max(max_node, t.node);
    const size_t num_nodes = static_cast<size_t>(max_node) + 1;
    for (NodeId n = 0; n < num_nodes; ++n) nodes_.emplace_back(n, &dep_, eval);

    num_shards_ = options_.num_threads <= 0
                      ? static_cast<int>(num_nodes)
                      : std::min<int>(options_.num_threads,
                                      static_cast<int>(num_nodes));

    obs::MetricsRegistry& reg = telemetry_->registry;
    transport_ = std::make_unique<Transport>(num_nodes, num_shards_,
                                             options_.transport, &reg);
    for (size_t n = 0; n < num_nodes; ++n) {
      const obs::LabelSet labels{{"node", std::to_string(n)}};
      node_inputs_.push_back(reg.GetCounter("rt_node_inputs_total", labels));
      node_net_frames_.push_back(
          reg.GetCounter("rt_net_out_frames_total", labels));
      node_net_bytes_.push_back(
          reg.GetCounter("rt_net_out_bytes_total", labels));
      node_crashes_.push_back(reg.GetCounter("rt_crashes_total", labels));
    }
    // Sink dedup horizons mirror the simulator's: window + 4*slack of
    // match time, past which no live state can regenerate a match. With
    // the default unbounded slack the horizon is never reached, so the
    // sets degenerate to the old remember-everything behavior and the
    // determinism contract is untouched.
    std::vector<uint64_t> horizon(static_cast<size_t>(dep_.num_queries()),
                                  MatchDedupSet::kNoHorizon);
    for (const Task& t : dep_.tasks()) {
      for (int q : t.sink_for) {
        if (t.target.window() != kNoWindow) {
          horizon[static_cast<size_t>(q)] =
              t.target.window() + 4 * eval.eviction_slack_ms;
        }
      }
    }
    for (int q = 0; q < dep_.num_queries(); ++q) {
      auto col = std::make_unique<QueryCollector>();
      col->seen = MatchDedupSet(horizon[static_cast<size_t>(q)]);
      const obs::LabelSet labels{{"query", std::to_string(q)}};
      col->latency = reg.GetHistogram("rt_latency_ms", labels, 1e-3);
      col->total = reg.GetCounter("rt_matches_total", labels);
      collectors_.push_back(std::move(col));
    }
    wire_rejects_ = reg.GetCounter("rt_wire_rejected_frames_total");
    source_skipped_ = reg.GetCounter("rt_source_skipped_events_total");
    flush_stash_.resize(num_nodes);

    sampler_ = obs::TraceSampler(options_.trace_sample_every);
    if (sampler_.enabled()) {
      // One single-writer buffer per worker shard plus one for the driver
      // (the last slot); drained only after every writer has joined.
      for (int s = 0; s <= num_shards_; ++s) {
        span_bufs_.push_back(std::make_unique<obs::SpanBuffer>(
            options_.trace_max_spans_per_thread));
      }
      trace_sampled_ = reg.GetCounter("rt_trace_sampled_total");
    }
  }

  RtReport Run(const std::vector<Event>& trace) {
    const auto wall_start = std::chrono::steady_clock::now();
    report_.source_events = trace.size();
    report_.matches_per_query.resize(
        static_cast<size_t>(dep_.num_queries()));
    inject_us_.assign(trace.size(), 0);

    if (options_.drift.enabled && !dep_.planner_rates().empty() &&
        !trace.empty()) {
      // The trace horizon in virtual ms; traces are time-sorted, so the
      // last event carries it.
      drift_ = std::make_unique<obs::RateDriftDetector>(
          dep_.planner_rates(), trace.back().time + 1, options_.drift);
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s) {
      workers.emplace_back([this, s] { WorkerMain(s); });
    }
    std::thread driver([this, &trace] { DriverMain(trace); });

    driver.join();
    WaitQuiesce();

    if (!transport_->wedged()) {
      // Final flush, two-phase to mirror the simulator exactly: every node
      // stashes its pending NSEQ candidates *before* any of them is routed,
      // so late flush outputs delivered to an already-flushed evaluator
      // never gain a second flush.
      for (NodeId n = 0; n < nodes_.size(); ++n) {
        transport_->PushControl(n, ControlKind::kFlushCollect);
      }
      WaitAcks(&flush_acks_);
      for (NodeId n = 0; n < nodes_.size(); ++n) {
        transport_->PushControl(n, ControlKind::kFlushEmit);
      }
      WaitAcks(&emit_acks_);
      WaitQuiesce();
    }
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      transport_->PushControl(n, ControlKind::kStop);
    }
    for (std::thread& t : workers) t.join();
    report_.wedged = transport_->wedged();

    FinishTelemetry();
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    BuildReport();
    return std::move(report_);
  }

 private:
  struct QueryCollector {
    std::mutex mu;
    MatchDedupSet seen;
    std::vector<Match> matches;
    obs::Histogram* latency = nullptr;
    obs::Counter* total = nullptr;
  };

  void WaitQuiesce() const {
    // The wedge watchdog: in-flight work that makes no progress for the
    // whole timeout means some packet can never acquire credits (worker
    // spill queues retry continuously, so a stuck counter is a stuck
    // packet, not a slow one).
    const uint64_t timeout_us = options_.transport.wedge_timeout_ms * 1000;
    int64_t last = transport_->InFlight();
    uint64_t stagnant_us = 0;
    while (transport_->InFlight() > 0) {
      if (transport_->wedged()) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      if (timeout_us == 0) continue;
      const int64_t now = transport_->InFlight();
      if (now != last) {
        last = now;
        stagnant_us = 0;
      } else if ((stagnant_us += 100) >= timeout_us) {
        transport_->MarkWedged();
        return;
      }
    }
  }

  void WaitAcks(const std::atomic<size_t>* acks) const {
    while (acks->load(std::memory_order_acquire) < nodes_.size()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  // --- worker side -----------------------------------------------------

  void WorkerMain(int shard) {
    // One batcher per worker: it only ever sends on behalf of this shard's
    // nodes, and `src` is stamped per flush from the routing node.
    std::map<NodeId, std::unique_ptr<LinkBatcher>> batchers;
    for (size_t n = static_cast<size_t>(shard); n < nodes_.size();
         n += static_cast<size_t>(num_shards_)) {
      batchers[static_cast<NodeId>(n)] = std::make_unique<LinkBatcher>(
          static_cast<NodeId>(n), transport_.get(), options_.transport,
          /*blocking=*/false);
    }
    auto spill_empty = [&] {
      for (auto& [n, b] : batchers) {
        if (!b->spill_empty()) return false;
      }
      return true;
    };

    for (;;) {
      for (auto& [n, b] : batchers) b->FlushSpill();
      const bool idle = spill_empty();
      Transport::Popped popped =
          transport_->PopReady(shard, idle ? 5000 : 100);
      for (const auto& [node, control] : popped.controls) {
        LinkBatcher* batcher = batchers[node].get();
        switch (control) {
          case ControlKind::kCrash:
            HandleCrash(node, batcher);
            transport_->NoteFramesDone(1);
            break;
          case ControlKind::kFlushCollect:
            nodes_[node].Flush(&flush_stash_[node]);
            flush_acks_.fetch_add(1, std::memory_order_release);
            break;
          case ControlKind::kFlushEmit:
            RouteOutputs(node, flush_stash_[node], batcher);
            flush_stash_[node].clear();
            batcher->FlushAll();
            emit_acks_.fetch_add(1, std::memory_order_release);
            break;
          case ControlKind::kStop:
            return;
        }
      }
      for (Packet& packet : popped.packets) {
        LinkBatcher* batcher = batchers[packet.dst].get();
        obs::SpanBuffer* spans =
            span_bufs_.empty() ? nullptr
                               : span_bufs_[static_cast<size_t>(shard)].get();
        // One clock read covers the whole packet: every frame in it became
        // available at deliver_at_us and left the inbox now.
        const uint64_t pop_us =
            spans != nullptr ? transport_->NowUs() : 0;
        Result<std::vector<DecodedFrame>> frames = DecodePacket(packet.bytes);
        if (!frames.ok()) {
          // A malformed packet is a transport bug, not a data condition;
          // account and drop rather than poison the node.
          wire_rejects_->Add(packet.frames);
        } else {
          for (const DecodedFrame& frame : frames.value()) {
            HandleFrame(packet.dst, frame, batcher, packet, pop_us, spans);
          }
        }
        batcher->FlushAll();
        transport_->Release(packet.dst, packet.frames);
        transport_->NoteFramesDone(packet.frames);
      }
    }
  }

  void HandleFrame(NodeId node, const DecodedFrame& frame,
                   LinkBatcher* batcher, const Packet& packet,
                   uint64_t pop_us, obs::SpanBuffer* spans) {
    NodeRuntime& rt = nodes_[node];
    node_inputs_[node]->Add(1);
    const uint64_t trace_id = frame.trace.trace_id;
    const bool traced = trace_id != 0 && spans != nullptr;
    if (traced) {
      // The hop: sender encode time to transport delivery. Both ends read
      // the same process-wide clock, so the difference is meaningful.
      obs::TraceSpan hop;
      hop.trace_id = trace_id;
      hop.kind = obs::SpanKind::kTransport;
      hop.node = node;
      hop.peer = packet.src;
      hop.start_us = frame.trace.sent_us;
      hop.dur_us = packet.deliver_at_us > frame.trace.sent_us
                       ? packet.deliver_at_us - frame.trace.sent_us
                       : 0;
      spans->Record(hop);
      obs::TraceSpan wait;
      wait.trace_id = trace_id;
      wait.kind = obs::SpanKind::kInboxWait;
      wait.node = node;
      wait.start_us = packet.deliver_at_us;
      wait.dur_us =
          pop_us > packet.deliver_at_us ? pop_us - packet.deliver_at_us : 0;
      spans->Record(wait);
    }
    std::vector<NodeRuntime::Output> outs;
    if (frame.kind == FrameKind::kEvent ||
        frame.kind == FrameKind::kEventTraced) {
      const Event& e = frame.event;
      for (int task : dep_.PrimitiveTasksFor(node, e.type)) {
        const uint64_t eval_start = traced ? transport_->NowUs() : 0;
        rt.OnInput(task, -1, Match::Single(e), &outs);
        if (traced) RecordEvalSpan(spans, trace_id, node, task, eval_start);
      }
    } else {
      const SimMessage& msg = frame.message;
      if (msg.src_task < 0 || msg.src_task >= dep_.num_tasks()) {
        wire_rejects_->Add(1);
        return;
      }
      if (!rt.Admit(msg)) return;  // duplicate from a recovering sender
      for (int succ : dep_.task(msg.src_task).successors) {
        if (dep_.task(succ).node != node) continue;
        const uint64_t eval_start = traced ? transport_->NowUs() : 0;
        rt.OnInput(succ, msg.src_task, msg.payload, &outs);
        if (traced) RecordEvalSpan(spans, trace_id, node, succ, eval_start);
      }
    }
    RouteOutputs(node, outs, batcher, /*replay=*/false, trace_id, spans);
  }

  void RecordEvalSpan(obs::SpanBuffer* spans, uint64_t trace_id, NodeId node,
                      int task, uint64_t start_us) {
    obs::TraceSpan s;
    s.trace_id = trace_id;
    s.kind = obs::SpanKind::kEvaluate;
    s.node = node;
    s.task = task;
    s.start_us = start_us;
    const uint64_t now = transport_->NowUs();
    s.dur_us = now > start_us ? now - start_us : 0;
    spans->Record(s);
  }

  void HandleCrash(NodeId node, LinkBatcher* batcher) {
    node_crashes_[node]->Add(1);
    NodeRuntime& rt = nodes_[node];
    rt.Crash();
    std::vector<NodeRuntime::Output> outs;
    rt.Recover(&outs);
    // Replay regenerates the original outputs with identical channel
    // sequence numbers; receivers drop them as duplicates. Sinks skip
    // them outright (replay=true): deterministic replay only re-derives
    // already-recorded matches, which a horizon-compacted dedup set might
    // no longer recognize.
    RouteOutputs(node, outs, batcher, /*replay=*/true);
    batcher->FlushAll();
  }

  void RouteOutputs(NodeId node, const std::vector<NodeRuntime::Output>& outs,
                    LinkBatcher* batcher, bool replay = false,
                    uint64_t trace_id = 0,
                    obs::SpanBuffer* spans = nullptr) {
    NodeRuntime& rt = nodes_[node];
    std::string frame;
    // One clock read per traced call: every output message of this unit of
    // work is encoded "now".
    const TraceContext ctx{trace_id,
                           trace_id != 0 ? transport_->NowUs() : 0};
    for (const NodeRuntime::Output& out : outs) {
      const Task& t = dep_.task(out.task);
      // Replay regenerates outputs already observed before the crash:
      // counting them again would inflate the observed projection rates.
      if (drift_ != nullptr && !replay && !t.is_primitive) {
        drift_->ObserveTaskOutput(t.id, out.match.max_time);
      }
      if (!replay) {
        for (int query : t.sink_for) {
          RecordMatch(query, out.match, trace_id, spans, node, t.id);
        }
      }
      std::set<NodeId> dst_nodes;
      for (int succ : t.successors) dst_nodes.insert(dep_.task(succ).node);
      for (NodeId dst : dst_nodes) {
        SimMessage msg;
        msg.src_task = t.id;
        msg.dst_task = -1;
        msg.channel_seq = rt.NextChannelSeq(t.id, dst);
        msg.payload = out.match;
        frame.clear();
        // The derived match inherits the input's trace id (untraced inputs
        // encode the v1 frame byte-identically).
        AppendMessageFrame(msg, ctx, &frame);
        if (dst != node) {
          node_net_frames_[node]->Add(1);
          node_net_bytes_[node]->Add(frame.size());
        }
        transport_->NoteFramesQueued(1);
        batcher->Add(dst, frame.data(), frame.size());
      }
    }
  }

  void RecordMatch(int query, const Match& m, uint64_t trace_id = 0,
                   obs::SpanBuffer* spans = nullptr, NodeId node = 0,
                   int task = -1) {
    QueryCollector& col = *collectors_[static_cast<size_t>(query)];
    uint64_t injected = 0;
    for (const Event& e : m.events) {
      if (e.seq < inject_us_.size()) {
        injected = std::max(injected, inject_us_[e.seq]);
      }
    }
    const uint64_t now = transport_->NowUs();
    std::lock_guard<std::mutex> lock(col.mu);
    if (!col.seen.Accept(m)) return;
    col.total->Add(1);
    col.latency->Record(
        now > injected ? static_cast<double>(now - injected) / 1000.0 : 0.0);
    if (options_.collect_matches) col.matches.push_back(m);
    if (trace_id != 0 && spans != nullptr) {
      // Only the first (accepted) emission of a match closes the trace.
      obs::TraceSpan s;
      s.trace_id = trace_id;
      s.kind = obs::SpanKind::kEmit;
      s.node = node;
      s.task = task;
      s.query = query;
      s.start_us = now;
      spans->Record(s);
    }
  }

  // --- source driver ---------------------------------------------------

  void DriverMain(const std::vector<Event>& trace) {
    LinkBatcher batcher(0, transport_.get(), options_.transport,
                        /*blocking=*/true);
    std::vector<std::pair<NodeId, uint64_t>> failures = options_.failures;
    std::sort(failures.begin(), failures.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    size_t next_failure = 0;
    auto inject_failures_until = [&](uint64_t trace_time_ms) {
      while (next_failure < failures.size() &&
             failures[next_failure].second <= trace_time_ms) {
        const NodeId victim = failures[next_failure].first;
        ++next_failure;
        if (victim >= nodes_.size()) continue;
        batcher.FlushAll();  // keep the crash ordered after sent events
        transport_->NoteFramesQueued(1);
        transport_->PushControl(victim, ControlKind::kCrash);
      }
    };

    Rng rng(options_.source_seed);
    const auto start = std::chrono::steady_clock::now();
    double next_arrival_s = 0;
    std::string frame;
    obs::SpanBuffer* spans =
        span_bufs_.empty() ? nullptr : span_bufs_.back().get();
    for (const Event& e : trace) {
      if (transport_->wedged()) break;  // watchdog fired: stop injecting
      inject_failures_until(e.time);
      // Drift sees every trace event — including ones no deployed task
      // consumes — because the snapshot's type rates describe the whole
      // generated stream, not the plan's subscription.
      if (drift_ != nullptr) drift_->ObserveType(e.type, e.time);
      if (e.origin >= nodes_.size() ||
          dep_.PrimitiveTasksFor(e.origin, e.type).empty()) {
        source_skipped_->Add(1);
        continue;
      }
      if (options_.source_rate_eps > 0) {
        next_arrival_s += rng.Exponential(options_.source_rate_eps);
        batcher.FlushAll();  // don't hold frames across the pacing sleep
        std::this_thread::sleep_until(
            start + std::chrono::duration<double>(next_arrival_s));
      }
      const uint64_t now = transport_->NowUs();
      if (e.seq < inject_us_.size()) inject_us_[e.seq] = now;
      const uint64_t trace_id = sampler_.TraceIdFor(e.seq);
      if (trace_id != 0 && spans != nullptr) {
        trace_sampled_->Add(1);
        obs::TraceSpan s;
        s.trace_id = trace_id;
        s.kind = obs::SpanKind::kIngest;
        s.node = e.origin;
        s.start_us = now;
        spans->Record(s);
      }
      frame.clear();
      AppendEventFrame(e, TraceContext{trace_id, now}, &frame);
      transport_->NoteFramesQueued(1);
      ++injected_;
      batcher.Add(e.origin, frame.data(), frame.size());
    }
    inject_failures_until(UINT64_MAX);
    batcher.FlushAll();
  }

  // --- end of run ------------------------------------------------------

  void FinishTelemetry() {
    obs::MetricsRegistry& reg = telemetry_->registry;
    if (sampler_.enabled()) {
      // Workers and driver have joined: draining the single-writer
      // buffers is race-free by construction.
      auto log = std::make_shared<obs::TraceLog>();
      for (const auto& buf : span_bufs_) log->Absorb(*buf);
      reg.GetCounter("rt_trace_spans_total")->Add(log->spans().size());
      reg.GetCounter("rt_trace_spans_dropped_total")->Add(log->dropped());
      report_.trace_log = std::move(log);
    }
    if (drift_ != nullptr) {
      report_.drift_report = drift_->Finish();
      report_.drift_score = report_.drift_report.drift_score;
      report_.drifted = report_.drift_report.drifted;
      for (const auto& s : report_.drift_report.streams) {
        const obs::LabelSet labels{{"stream", s.label}};
        reg.GetGauge("rt_drift_score", labels)->Set(s.score);
        reg.GetGauge("rt_drift_observed_eps", labels)->Set(s.observed_eps);
        reg.GetGauge("rt_drift_expected_eps", labels)->Set(s.expected_eps);
      }
      reg.GetGauge("rt_drifted")->Set(report_.drifted ? 1.0 : 0.0);
      reg.GetGauge("rt_drift_score_max")->Set(report_.drift_score);
    }
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const std::string node_str = std::to_string(n);
      const obs::LabelSet node_labels{{"node", node_str}};
      reg.GetCounter("rt_node_dup_dropped_total", node_labels)
          ->Add(nodes_[n].DuplicatesDropped());
      // Observed volatile-state peak, directly comparable against the
      // prove_state_bound gauge the static analyzer exports for this node.
      reg.GetGauge("rt_node_peak_buffered", node_labels)
          ->Set(static_cast<double>(nodes_[n].PeakBufferedMatches()));
      const ExactlyOnceFilter& filter = nodes_[n].filter();
      reg.GetGauge("rt_filter_pending_peak", node_labels)
          ->Set(static_cast<double>(filter.PeakPendingAboveWatermark()));
      for (const auto& [src_task, watermark] : filter.Watermarks()) {
        reg.GetGauge("rt_filter_watermark",
                     obs::LabelSet{{"node", node_str},
                                   {"src", std::to_string(src_task)}})
            ->Set(static_cast<double>(watermark));
      }
      for (const auto& [task, counters] : nodes_[n].task_counters()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("rt_task_inputs_total", labels)->Add(counters.inputs);
        reg.GetCounter("rt_task_outputs_total", labels)->Add(counters.outputs);
      }
      for (const auto& [task, stats] : nodes_[n].EvaluatorStatsByTask()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("rt_evaluator_evictions_total", labels)
            ->Add(stats.evictions);
        reg.GetCounter("rt_evaluator_pending_released_total", labels)
            ->Add(stats.pending_released);
        reg.GetGauge("rt_task_peak_pending", labels)
            ->Set(static_cast<double>(stats.peak_pending));
      }
    }
    for (size_t q = 0; q < collectors_.size(); ++q) {
      QueryCollector& col = *collectors_[q];
      std::lock_guard<std::mutex> lock(col.mu);
      const obs::LabelSet labels{{"query", std::to_string(q)}};
      reg.GetGauge("rt_sink_dedup_live", labels)
          ->Set(static_cast<double>(col.seen.live()));
      reg.GetGauge("rt_sink_dedup_peak", labels)
          ->Set(static_cast<double>(col.seen.peak_live()));
      reg.GetCounter("rt_sink_dup_matches_total", labels)
          ->Add(col.seen.duplicates());
      reg.GetCounter("rt_sink_dedup_compacted_total", labels)
          ->Add(col.seen.compacted());
    }
  }

  void BuildReport() {
    report_.injected_events = injected_;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      report_.inputs_processed += node_inputs_[n]->Value();
      report_.network_frames += node_net_frames_[n]->Value();
      report_.network_bytes += node_net_bytes_[n]->Value();
      report_.duplicates_dropped += nodes_[n].DuplicatesDropped();
      report_.crashes += node_crashes_[n]->Value();
    }
    report_.backpressure_stalls = transport_->Stalls();
    report_.events_per_sec =
        report_.wall_seconds > 0
            ? static_cast<double>(injected_) / report_.wall_seconds
            : 0;
    obs::Histogram merged(1e-3);
    for (size_t q = 0; q < collectors_.size(); ++q) {
      merged.MergeFrom(*collectors_[q]->latency);
      report_.matches_per_query[q] =
          CanonicalMatchSet(std::move(collectors_[q]->matches));
    }
    report_.latency_ms = Distribution::FromHistogram(merged);
    telemetry_->registry.GetGauge("rt_wall_seconds")
        ->Set(report_.wall_seconds);
    report_.telemetry = telemetry_;
  }

  const Deployment& dep_;
  RtOptions options_;
  std::shared_ptr<obs::RunTelemetry> telemetry_;
  std::vector<NodeRuntime> nodes_;
  int num_shards_ = 1;
  std::unique_ptr<Transport> transport_;

  std::vector<obs::Counter*> node_inputs_;
  std::vector<obs::Counter*> node_net_frames_;
  std::vector<obs::Counter*> node_net_bytes_;
  std::vector<obs::Counter*> node_crashes_;
  obs::Counter* wire_rejects_ = nullptr;
  obs::Counter* source_skipped_ = nullptr;

  obs::TraceSampler sampler_;
  /// Per-shard span sinks, plus the driver's at the back; single writer
  /// each (see trace.h), drained by FinishTelemetry after the joins.
  std::vector<std::unique_ptr<obs::SpanBuffer>> span_bufs_;
  obs::Counter* trace_sampled_ = nullptr;
  std::unique_ptr<obs::RateDriftDetector> drift_;

  std::vector<std::unique_ptr<QueryCollector>> collectors_;
  std::vector<std::vector<NodeRuntime::Output>> flush_stash_;
  std::vector<uint64_t> inject_us_;
  std::atomic<size_t> flush_acks_{0};
  std::atomic<size_t> emit_acks_{0};
  uint64_t injected_ = 0;

  RtReport report_;
};

}  // namespace

std::string RtReport::Summary() const {
  std::string s;
  if (wedged) s += "RUN WEDGED (credit deadlock watchdog fired)\n";
  s += "events: " + std::to_string(source_events) + " (injected " +
       std::to_string(injected_events) + "), inputs processed: " +
       std::to_string(inputs_processed) + "\n";
  s += "network: " + std::to_string(network_frames) + " frames, " +
       std::to_string(network_bytes) + " bytes\n";
  s += "backpressure stalls: " + std::to_string(backpressure_stalls) +
       ", duplicates dropped: " + std::to_string(duplicates_dropped) +
       ", crashes: " + std::to_string(crashes) + "\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "throughput: %.0f events/s, wall %.3fs\n",
                events_per_sec, wall_seconds);
  s += buf;
  s += "latency (wall ms): " + latency_ms.ToString();
  if (!drift_report.streams.empty()) {
    std::snprintf(buf, sizeof(buf), "\ndrift: score %.3f, drifted %s",
                  drift_score, drifted ? "true" : "false");
    s += buf;
  }
  if (trace_log != nullptr) {
    s += "\ntrace: " + std::to_string(trace_log->spans().size()) +
         " spans (" + std::to_string(trace_log->dropped()) + " dropped)";
  }
  return s;
}

RtRuntime::RtRuntime(const Deployment& deployment, const RtOptions& options)
    : deployment_(deployment), options_(options) {}

RtReport RtRuntime::Run(const std::vector<Event>& trace) {
  return RtRun(deployment_, options_).Run(trace);
}

}  // namespace muse::rt
