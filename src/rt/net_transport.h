#ifndef MUSE_RT_NET_TRANSPORT_H_
#define MUSE_RT_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/obs/trace.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"

namespace muse::rt {

/// Control-plane frames surfaced by the IO thread to the embedding
/// runtime. All callbacks run on the IO thread — they must not block on
/// anything the IO thread itself services.
struct NetCallbacks {
  /// kAck: a flush-barrier phase acknowledged for `count` nodes.
  std::function<void(ControlKind kind, uint32_t count)> on_ack;
  /// kSinkMatch: a daemon emitted a sink match (coordinator side).
  std::function<void(int query, const Match& m, uint64_t trace_id)>
      on_sink_match;
  /// kStats: a daemon's end-of-run counter export.
  std::function<void(const std::vector<StatEntry>& stats)> on_stats;
  /// kSpan: one causal-trace span shipped from a daemon.
  std::function<void(const obs::TraceSpan& span)> on_span;
  /// kBye: the peer is shutting down cleanly (EOF after this is expected).
  std::function<void(int peer)> on_bye;
  /// The peer's connection died without a kBye — crash or kill. The
  /// transport has already marked itself wedged when this fires.
  std::function<void(int peer)> on_peer_dead;
};

/// TCP transport: same contract as InProcTransport, but packets whose
/// destination inbox lives behind a socket are encoded as kPacket
/// envelopes (wire.h) and shipped over non-blocking localhost TCP,
/// reassembled incrementally on the receiving side (FrameAssembler), and
/// enqueued into the receiver's embedded in-proc inboxes. Three roles:
///
///  - kLoopback: one process owns every node, but every cross-node packet
///    still round-trips through a real TCP connection to the process's own
///    listener — the full socket path (encode, send, epoll, reassemble,
///    credit grant) under single-process determinism. The differential
///    harness uses it to isolate wire bugs from distribution bugs.
///  - kDaemon: a muse_node process owning the nodes with
///    node % processes == self_process, meshed with every other daemon
///    and the coordinator.
///  - kCoordinator: owns no nodes; injects the source trace, orchestrates
///    barriers, and collects matches/acks/stats from the daemons.
///
/// Credit model: every inbox's window W is split into processes+1 equal
/// shares, one per sender domain (each daemon plus the coordinator; the
/// owner's local senders consume the embedded inbox's share). A sender
/// spends its own share synchronously and regains it when the receiver
/// releases the packet and ships a kCredit grant back — so no domain can
/// buffer more than W/(processes+1) frames into one inbox, aggregate
/// buffering stays <= W, and deadlock-freedom needs every share >= the
/// max packet size (muse_lint M900 with --rt-processes). TCP's own socket
/// buffers hold only packets already covered by spent credits, so kernel
/// buffering adds no uncounted capacity.
class NetTransport : public Transport {
 public:
  enum class Role { kLoopback, kCoordinator, kDaemon };

  /// Connected-socket bootstrap; the cluster handshake (cluster.h) or the
  /// Loopback() factory produces it. Peer indexing: daemons see peers
  /// [0, processes) as the daemon mesh (entry self_process unused, -1)
  /// and peer `processes` as the coordinator; the coordinator sees peers
  /// [0, processes) as the daemons; loopback has peer 0 (outbound half)
  /// and peer 1 (inbound half) of its self-connection.
  struct Setup {
    Role role = Role::kLoopback;
    int self_process = 0;  ///< daemon index; ignored for other roles
    int processes = 1;     ///< daemon count P
    std::vector<int> peer_fds;
    size_t num_nodes = 0;
    int num_shards = 1;
    RtTransportOptions options;
    NetCallbacks callbacks;
  };

  NetTransport(Setup setup, obs::MetricsRegistry* registry);
  ~NetTransport() override;

  /// Single-process loopback factory: binds an ephemeral localhost
  /// listener, connects to itself, and wires both halves as peers.
  static Result<std::unique_ptr<NetTransport>> Loopback(
      size_t num_nodes, int num_shards, const RtTransportOptions& options,
      obs::MetricsRegistry* registry);

  // --- Transport interface ------------------------------------------------

  size_t num_nodes() const override { return embedded_->num_nodes(); }
  int num_shards() const override { return embedded_->num_shards(); }
  int shard_of(NodeId node) const override {
    return embedded_->shard_of(node);
  }
  std::vector<NodeId> LocalNodes() const override;
  uint64_t DeliverAt(NodeId src, NodeId dst) const override;
  bool TryDeliver(Packet&& packet) override;
  void DeliverBlocking(Packet packet) override;
  void PushControl(NodeId dst, ControlKind kind) override;
  Popped PopReady(int shard, uint64_t max_wait_us) override;
  void Release(const Packet& packet) override;
  uint64_t Stalls() const override;
  size_t CapacityOf(NodeId node) const override;
  bool wedged() const override {
    return Transport::wedged() || embedded_->wedged();
  }
  std::pair<uint64_t, uint64_t> GlobalCounts() override;

  // --- control-plane sends (runtime / daemon orchestration) ---------------

  /// True when this process owns `node`'s inbox.
  bool IsLocal(NodeId node) const;
  /// Peer index of the process owning `node` (loopback: the self-peer).
  int OwnerPeer(NodeId node) const;

  /// Enqueues one encoded wire frame to `peer`; false if the peer is gone.
  bool SendFrameToPeer(int peer, const std::string& frame);
  /// Daemon convenience: send to the coordinator peer.
  bool SendToCoordinator(const std::string& frame);
  /// Number of peers that sent kBye so far.
  int ByesReceived() const { return byes_.load(std::memory_order_acquire); }

  /// Blocks until every peer's tx buffer drained (the IO thread keeps
  /// flushing); false on timeout. Call before Shutdown when the last
  /// frames (kStats/kBye) must actually reach the wire.
  bool FlushPending(uint64_t timeout_ms);

  /// Stops the IO thread and closes every socket. Idempotent; the
  /// destructor calls it. After Shutdown, peer death no longer wedges.
  void Shutdown();

 private:
  struct CreditShare {
    size_t capacity = 0;  ///< 0 = unbounded
    size_t credits = 0;
  };
  struct Peer {
    int index = -1;
    int fd = -1;
    std::atomic<bool> dead{false};
    std::mutex tx_mu;
    std::string tx;        ///< bytes accepted but not yet written
    bool tx_armed = false; ///< EPOLLOUT currently requested
    bool closed = false;
    /// Written by the IO thread (kBye), read by worker/driver threads via
    /// the SendFrameToPeer failure path (PeerDied) — hence atomic.
    std::atomic<bool> saw_bye{false};
    FrameAssembler rx;
    obs::Counter* tx_frames = nullptr;
    obs::Counter* tx_bytes = nullptr;
    obs::Counter* rx_frames = nullptr;
    obs::Counter* rx_bytes = nullptr;
    obs::Gauge* tx_buffered = nullptr;
  };

  bool RouteViaSocket(NodeId src, NodeId dst) const;
  void SendPacket(Packet&& packet);
  void IoMain();
  void HandleReadable(int peer);
  void HandleNetFrame(int peer, const NetFrame& nf);
  void PeerDied(int peer, const char* why);
  bool FlushTxLocked(Peer& p);  // holds p.tx_mu; false on fatal error
  void ArmTxLocked(Peer& p);

  void WakeAllForWedge() override;

  Role role_;
  int self_process_ = 0;
  int processes_ = 1;
  RtTransportOptions options_;
  std::unique_ptr<InProcTransport> embedded_;
  std::vector<std::unique_ptr<Peer>> peers_;
  NetCallbacks callbacks_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: shutdown + tx kicks
  std::thread io_thread_;
  std::atomic<bool> shutting_down_{false};

  std::mutex credit_mu_;
  std::condition_variable credit_cv_;
  std::vector<CreditShare> shares_;  ///< sender-side share per dst node
  std::atomic<uint64_t> remote_stalls_{0};
  obs::Counter* remote_stall_metric_ = nullptr;
  obs::Counter* source_stall_us_ = nullptr;
  obs::Counter* stream_errors_ = nullptr;

  // Coordinator quiescence probe state (GlobalCounts).
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  int probe_pending_ = 0;
  uint64_t probe_q_ = 0;
  uint64_t probe_d_ = 0;

  std::atomic<int> byes_{0};
};

}  // namespace muse::rt

#endif  // MUSE_RT_NET_TRANSPORT_H_
