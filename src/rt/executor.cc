#include "src/rt/executor.h"

#include <algorithm>
#include <set>
#include <utility>

namespace muse::rt {

void LinkBatcher::Add(NodeId dst, const char* frame, size_t frame_bytes) {
  Batch& batch = batches_[dst];
  batch.bytes.append(frame, frame_bytes);
  ++batch.frames;
  if (batch.frames >=
      static_cast<uint32_t>(std::max(1, options_.batch_max_frames))) {
    FlushLink(dst);
  }
}

void LinkBatcher::FlushAll() {
  for (auto& [dst, batch] : batches_) {
    if (batch.frames > 0) FlushLink(dst);
  }
}

bool LinkBatcher::FlushSpill() {
  for (auto it = spill_.begin(); it != spill_.end();) {
    std::deque<Packet>& q = it->second;
    while (!q.empty() && transport_->TryDeliver(std::move(q.front()))) {
      q.pop_front();
    }
    it = q.empty() ? spill_.erase(it) : ++it;
  }
  return spill_.empty();
}

void LinkBatcher::FlushLink(NodeId dst) {
  Batch& batch = batches_[dst];
  Packet packet;
  packet.src = src_;
  packet.dst = dst;
  // The blocking batcher is the source driver, which logically injects
  // *at* the origin node — no network hop, immediate delivery.
  packet.deliver_at_us =
      blocking_ ? transport_->NowUs() : transport_->DeliverAt(src_, dst);
  packet.frames = batch.frames;
  packet.bytes = std::move(batch.bytes);
  batch.bytes.clear();
  batch.frames = 0;
  if (blocking_) {
    transport_->DeliverBlocking(std::move(packet));
    return;
  }
  // FIFO per link: never overtake an already-spilled packet.
  std::deque<Packet>& q = spill_[dst];
  if (q.empty() && transport_->TryDeliver(std::move(packet))) {
    spill_.erase(dst);
    return;
  }
  q.push_back(std::move(packet));
}

RtExecutor::RtExecutor(const Deployment& dep, EvaluatorOptions eval,
                       const RtTransportOptions& transport_options,
                       Transport* transport, obs::MetricsRegistry* registry,
                       Hooks hooks, size_t trace_spans_per_shard)
    : dep_(dep),
      transport_options_(transport_options),
      transport_(transport),
      hooks_(std::move(hooks)) {
  if (eval.eviction_slack_ms == 0) {
    eval.eviction_slack_ms = kUnboundedEvictionSlackMs;
  }
  const size_t num_nodes = transport_->num_nodes();
  for (NodeId n = 0; n < num_nodes; ++n) nodes_.emplace_back(n, &dep_, eval);
  flush_stash_.resize(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    const obs::LabelSet labels{{"node", std::to_string(n)}};
    node_inputs_.push_back(
        registry->GetCounter("rt_node_inputs_total", labels));
    node_net_frames_.push_back(
        registry->GetCounter("rt_net_out_frames_total", labels));
    node_net_bytes_.push_back(
        registry->GetCounter("rt_net_out_bytes_total", labels));
    node_crashes_.push_back(registry->GetCounter("rt_crashes_total", labels));
  }
  wire_rejects_ = registry->GetCounter("rt_wire_rejected_frames_total");
  rt_batches_ = registry->GetCounter("rt_inbox_batches_total");
  rt_batch_rows_ = registry->GetCounter("rt_inbox_batch_rows_total");
  if (trace_spans_per_shard > 0) {
    for (int s = 0; s < transport_->num_shards(); ++s) {
      span_bufs_.push_back(
          std::make_unique<obs::SpanBuffer>(trace_spans_per_shard));
    }
  }
}

void RtExecutor::Start() {
  workers_.reserve(static_cast<size_t>(transport_->num_shards()));
  for (int s = 0; s < transport_->num_shards(); ++s) {
    workers_.emplace_back([this, s] { WorkerMain(s); });
  }
}

void RtExecutor::Join() {
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void RtExecutor::WorkerMain(int shard) {
  // One batcher per local node of this shard: it only ever sends on behalf
  // of that node, and `src` is stamped per flush from the routing node.
  std::map<NodeId, std::unique_ptr<LinkBatcher>> batchers;
  for (NodeId n : transport_->LocalNodes()) {
    if (transport_->shard_of(n) != shard) continue;
    batchers[n] = std::make_unique<LinkBatcher>(
        n, transport_, transport_options_, /*blocking=*/false);
  }
  auto spill_empty = [&] {
    for (auto& [n, b] : batchers) {
      if (!b->spill_empty()) return false;
    }
    return true;
  };

  // Scratch batch reused across packets; always drained before the packet's
  // credits are released.
  EventBatch event_batch;

  for (;;) {
    // A wedged transport never delivers the remaining work (dead peer or
    // credit deadlock): unwind instead of draining — wedged reports are
    // explicitly truncated.
    if (transport_->wedged()) return;
    for (auto& [n, b] : batchers) b->FlushSpill();
    const bool idle = spill_empty();
    Transport::Popped popped = transport_->PopReady(shard, idle ? 5000 : 100);
    for (const auto& [node, control] : popped.controls) {
      // The batcher map is the authority on which nodes this worker owns:
      // a control naming any other node (a daemon's non-local inboxes all
      // alias shard 0) is misrouted — account and drop rather than
      // dereference a default-inserted null entry.
      const auto it = batchers.find(node);
      if (it == batchers.end()) {
        wire_rejects_->Add(1);
        if (control == ControlKind::kCrash) transport_->NoteFramesDone(1);
        continue;
      }
      LinkBatcher* batcher = it->second.get();
      switch (control) {
        case ControlKind::kCrash:
          HandleCrash(node, batcher);
          transport_->NoteFramesDone(1);
          break;
        case ControlKind::kFlushCollect:
          nodes_[node].Flush(&flush_stash_[node]);
          if (hooks_.ack) hooks_.ack(ControlKind::kFlushCollect);
          break;
        case ControlKind::kFlushEmit:
          RouteOutputs(node, flush_stash_[node], batcher);
          flush_stash_[node].clear();
          batcher->FlushAll();
          if (hooks_.ack) hooks_.ack(ControlKind::kFlushEmit);
          break;
        case ControlKind::kStop:
          return;
      }
    }
    for (Packet& packet : popped.packets) {
      const auto it = batchers.find(packet.dst);
      if (it == batchers.end()) {
        // Misrouted packet for a node this worker doesn't own (see the
        // control-path comment): reject, then settle credits and the
        // in-flight accounting so the sender doesn't leak its share.
        wire_rejects_->Add(packet.frames);
        transport_->Release(packet);
        transport_->NoteFramesDone(packet.frames);
        continue;
      }
      LinkBatcher* batcher = it->second.get();
      obs::SpanBuffer* spans =
          span_bufs_.empty() ? nullptr
                             : span_bufs_[static_cast<size_t>(shard)].get();
      // One clock read covers the whole packet: every frame in it became
      // available at deliver_at_us and left the inbox now.
      const uint64_t pop_us = spans != nullptr ? transport_->NowUs() : 0;
      Result<std::vector<DecodedFrame>> frames = DecodePacket(packet.bytes);
      if (!frames.ok()) {
        // A malformed packet is a transport bug, not a data condition;
        // account and drop rather than poison the node.
        wire_rejects_->Add(packet.frames);
      } else if (transport_options_.batch_inbox) {
        // Drain runs of consecutive untraced event frames into a columnar
        // batch; anything else (messages, traced events, controls) breaks
        // the run and is handled on the scalar path in its original
        // position, so delivery/log/channel-seq order is exactly scalar.
        for (const DecodedFrame& frame : frames.value()) {
          if (frame.kind == FrameKind::kEvent && frame.trace.trace_id == 0) {
            event_batch.Append(frame.event);
            continue;
          }
          FlushEventBatch(packet.dst, &event_batch, batcher);
          HandleFrame(packet.dst, frame, batcher, packet, pop_us, spans);
        }
        FlushEventBatch(packet.dst, &event_batch, batcher);
      } else {
        for (const DecodedFrame& frame : frames.value()) {
          HandleFrame(packet.dst, frame, batcher, packet, pop_us, spans);
        }
      }
      batcher->FlushAll();
      transport_->Release(packet);
      transport_->NoteFramesDone(packet.frames);
    }
  }
}

void RtExecutor::HandleFrame(NodeId node, const DecodedFrame& frame,
                             LinkBatcher* batcher, const Packet& packet,
                             uint64_t pop_us, obs::SpanBuffer* spans) {
  NodeRuntime& rt = nodes_[node];
  node_inputs_[node]->Add(1);
  const uint64_t trace_id = frame.trace.trace_id;
  const bool traced = trace_id != 0 && spans != nullptr;
  if (traced) {
    // The hop: sender encode time to transport delivery. Both ends read
    // clocks synced to the coordinator's epoch, so the difference is
    // meaningful (half-RTT error across processes).
    obs::TraceSpan hop;
    hop.trace_id = trace_id;
    hop.kind = obs::SpanKind::kTransport;
    hop.node = node;
    hop.peer = packet.src;
    hop.start_us = frame.trace.sent_us;
    hop.dur_us = packet.deliver_at_us > frame.trace.sent_us
                     ? packet.deliver_at_us - frame.trace.sent_us
                     : 0;
    spans->Record(hop);
    obs::TraceSpan wait;
    wait.trace_id = trace_id;
    wait.kind = obs::SpanKind::kInboxWait;
    wait.node = node;
    wait.start_us = packet.deliver_at_us;
    wait.dur_us =
        pop_us > packet.deliver_at_us ? pop_us - packet.deliver_at_us : 0;
    spans->Record(wait);
  }
  std::vector<NodeRuntime::Output> outs;
  if (frame.kind == FrameKind::kEvent ||
      frame.kind == FrameKind::kEventTraced) {
    const Event& e = frame.event;
    for (int task : dep_.PrimitiveTasksFor(node, e.type)) {
      const uint64_t eval_start = traced ? transport_->NowUs() : 0;
      rt.OnInput(task, -1, Match::Single(e), &outs);
      if (traced) RecordEvalSpan(spans, trace_id, node, task, eval_start);
    }
  } else {
    const SimMessage& msg = frame.message;
    if (msg.src_task < 0 || msg.src_task >= dep_.num_tasks()) {
      wire_rejects_->Add(1);
      return;
    }
    if (!rt.Admit(msg)) return;  // duplicate from a recovering sender
    for (int succ : dep_.task(msg.src_task).successors) {
      if (dep_.task(succ).node != node) continue;
      const uint64_t eval_start = traced ? transport_->NowUs() : 0;
      rt.OnInput(succ, msg.src_task, msg.payload, &outs);
      if (traced) RecordEvalSpan(spans, trace_id, node, succ, eval_start);
    }
  }
  RouteOutputs(node, outs, batcher, /*replay=*/false, trace_id, spans);
}

void RtExecutor::FlushEventBatch(NodeId node, EventBatch* batch,
                                 LinkBatcher* batcher) {
  if (batch->empty()) return;
  node_inputs_[node]->Add(batch->size());
  rt_batches_->Add(1);
  rt_batch_rows_->Add(batch->size());
  std::vector<NodeRuntime::Output> outs;
  nodes_[node].OnEventBatch(*batch, &outs);
  RouteOutputs(node, outs, batcher);
  batch->Clear();
}

void RtExecutor::RecordEvalSpan(obs::SpanBuffer* spans, uint64_t trace_id,
                                NodeId node, int task, uint64_t start_us) {
  obs::TraceSpan s;
  s.trace_id = trace_id;
  s.kind = obs::SpanKind::kEvaluate;
  s.node = node;
  s.task = task;
  s.start_us = start_us;
  const uint64_t now = transport_->NowUs();
  s.dur_us = now > start_us ? now - start_us : 0;
  spans->Record(s);
}

void RtExecutor::HandleCrash(NodeId node, LinkBatcher* batcher) {
  node_crashes_[node]->Add(1);
  NodeRuntime& rt = nodes_[node];
  rt.Crash();
  std::vector<NodeRuntime::Output> outs;
  rt.Recover(&outs);
  // Replay regenerates the original outputs with identical channel
  // sequence numbers; receivers drop them as duplicates. Sinks skip
  // them outright (replay=true): deterministic replay only re-derives
  // already-recorded matches, which a horizon-compacted dedup set might
  // no longer recognize.
  RouteOutputs(node, outs, batcher, /*replay=*/true);
  batcher->FlushAll();
}

void RtExecutor::RouteOutputs(NodeId node,
                              const std::vector<NodeRuntime::Output>& outs,
                              LinkBatcher* batcher, bool replay,
                              uint64_t trace_id, obs::SpanBuffer* spans) {
  NodeRuntime& rt = nodes_[node];
  std::string frame;
  // One clock read per traced call: every output message of this unit of
  // work is encoded "now".
  const TraceContext ctx{trace_id, trace_id != 0 ? transport_->NowUs() : 0};
  for (const NodeRuntime::Output& out : outs) {
    const Task& t = dep_.task(out.task);
    // Replay regenerates outputs already observed before the crash:
    // counting them again would inflate the observed projection rates.
    if (hooks_.observe_output && !replay && !t.is_primitive) {
      hooks_.observe_output(t.id, out.match.max_time);
    }
    if (!replay) {
      for (int query : t.sink_for) {
        const bool accepted = hooks_.record_match(query, out.match, trace_id);
        if (accepted && trace_id != 0 && spans != nullptr) {
          // Only the first (accepted) emission of a match closes the
          // trace.
          obs::TraceSpan s;
          s.trace_id = trace_id;
          s.kind = obs::SpanKind::kEmit;
          s.node = node;
          s.task = t.id;
          s.query = query;
          s.start_us = transport_->NowUs();
          spans->Record(s);
        }
      }
    }
    std::set<NodeId> dst_nodes;
    for (int succ : t.successors) dst_nodes.insert(dep_.task(succ).node);
    for (NodeId dst : dst_nodes) {
      SimMessage msg;
      msg.src_task = t.id;
      msg.dst_task = -1;
      msg.channel_seq = rt.NextChannelSeq(t.id, dst);
      msg.payload = out.match;
      frame.clear();
      // The derived match inherits the input's trace id (untraced inputs
      // encode the v1 frame byte-identically).
      AppendMessageFrame(msg, ctx, &frame);
      if (dst != node) {
        node_net_frames_[node]->Add(1);
        node_net_bytes_[node]->Add(frame.size());
      }
      transport_->NoteFramesQueued(1);
      batcher->Add(dst, frame.data(), frame.size());
    }
  }
}

}  // namespace muse::rt
