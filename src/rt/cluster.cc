#include "src/rt/cluster.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "src/obs/telemetry.h"
#include "src/rt/executor.h"
#include "src/rt/net_transport.h"
#include "src/rt/wire.h"

namespace muse::rt {
namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

int ListenLocalhost(uint16_t* port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0) {
    close(fd);
    return -1;
  }
  socklen_t alen = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  *port = ntohs(addr.sin_port);
  return fd;
}

/// Dials `host`:`port`; an empty host means 127.0.0.1 (the kPeers
/// default), any other value must be a numeric IPv4 address — the peer
/// directory carries addresses, not names, so there is no resolver here.
int DialHost(const std::string& host, uint16_t port) {
  in_addr peer_addr{};
  if (host.empty()) {
    peer_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &peer_addr) != 1) {
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = peer_addr;
  addr.sin_port = htons(port);
  // The listener may not be up yet (daemons race the coordinator's spawn
  // loop): retry briefly instead of failing the whole handshake.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno != ECONNREFUSED && errno != EINTR) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  close(fd);
  return -1;
}

int DialLocalhost(uint16_t port) { return DialHost("", port); }

int AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int r = poll(&pfd, 1, timeout_ms);
  if (r <= 0) return -1;
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

bool SendAllBlocking(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Blocking single-frame read used only during the handshake; `assembler`
/// persists per connection so bytes of a following frame are kept.
Result<NetFrame> ReadFrameBlocking(int fd, FrameAssembler* assembler,
                                   int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string frame;
  char buf[4096];
  for (;;) {
    if (assembler->Next(&frame)) {
      size_t consumed = 0;
      return DecodeNetFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                            frame.size(), &consumed);
    }
    if (assembler->poisoned()) return Error{assembler->error()};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return Error{"handshake: frame read timed out"};
    pollfd pfd{fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0 && errno != EINTR) return Error{"handshake: poll failed"};
    if (pr <= 0) continue;
    const ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r == 0) return Error{"handshake: peer closed the connection"};
    if (r < 0) {
      if (errno == EINTR) continue;
      return Error{"handshake: recv failed"};
    }
    assembler->Feed(buf, static_cast<size_t>(r));
  }
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

constexpr int kHandshakeTimeoutMs = 15000;

}  // namespace

ClusterHandle::~ClusterHandle() {
  if (!reaped_) {
    KillAll(SIGKILL);
    ReapAll(0);
  }
  for (const std::string& f : temp_files_) unlink(f.c_str());
  if (!temp_dir_.empty()) rmdir(temp_dir_.c_str());
}

uint64_t ClusterHandle::SinceEpochUs() const {
  return ElapsedUs(clock_epoch_);
}

void ClusterHandle::KillAll(int sig) {
  for (pid_t pid : pids_) {
    if (pid > 0) kill(pid, sig);
  }
}

int ClusterHandle::ReapAll(uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int killed = 0;
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        kill(pid, SIGKILL);
        ++killed;
        waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    pid = -1;
  }
  reaped_ = true;
  return killed;
}

std::string FindMuseNodeBinary(const std::string& hint) {
  auto executable = [](const std::string& path) {
    return !path.empty() && access(path.c_str(), X_OK) == 0;
  };
  if (executable(hint)) return hint;
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const size_t slash = dir.rfind('/');
    if (slash != std::string::npos) dir.resize(slash);
    if (executable(dir + "/muse_node")) return dir + "/muse_node";
    if (executable(dir + "/../tools/muse_node")) {
      return dir + "/../tools/muse_node";
    }
  }
  const char* env = std::getenv("MUSE_NODE_BIN");
  if (env != nullptr && executable(env)) return env;
  return "";
}

Result<std::unique_ptr<ClusterHandle>> LaunchCluster(
    const std::string& muse_node_bin, const std::string& spec_text,
    const std::string& plan_json, const DaemonConfig& daemon_template) {
  const int processes = daemon_template.processes;
  if (processes < 1) return Error{"cluster: processes must be >= 1"};
  const std::string bin = FindMuseNodeBinary(muse_node_bin);
  if (bin.empty()) {
    return Error{
        "cluster: muse_node binary not found (build tools/muse_node or set "
        "MUSE_NODE_BIN)"};
  }

  auto handle = std::make_unique<ClusterHandle>();
  char dir_template[] = "/tmp/muse_cluster_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    return Error{"cluster: mkdtemp failed"};
  }
  handle->temp_dir_ = dir_template;
  const std::string spec_path = handle->temp_dir_ + "/workload.spec";
  const std::string plan_path = handle->temp_dir_ + "/plan.json";
  handle->temp_files_ = {spec_path, plan_path};
  if (!WriteFile(spec_path, spec_text) || !WriteFile(plan_path, plan_json)) {
    return Error{"cluster: failed to write spec/plan files"};
  }

  uint16_t coord_port = 0;
  const int listen_fd = ListenLocalhost(&coord_port);
  if (listen_fd < 0) return Error{"cluster: coordinator listen failed"};

  const RtTransportOptions& t = daemon_template.transport;
  std::string node_caps;
  for (size_t i = 0; i < t.node_inbox_capacity.size(); ++i) {
    if (i > 0) node_caps += ",";
    node_caps += std::to_string(t.node_inbox_capacity[i]);
  }
  std::vector<std::string> base_args = {
      bin,
      "--processes", std::to_string(processes),
      "--coord-port", std::to_string(coord_port),
      "--spec", spec_path,
      "--plan", plan_path,
      "--threads", std::to_string(daemon_template.num_threads),
      "--rt-inbox", std::to_string(t.inbox_capacity),
      "--rt-batch", std::to_string(t.batch_max_frames),
      "--rt-delay-us", std::to_string(t.delivery_delay_us),
      "--rt-wedge-ms", std::to_string(t.wedge_timeout_ms),
      "--rt-slack-ms", std::to_string(daemon_template.eval.eviction_slack_ms),
      "--rt-max-matches", std::to_string(daemon_template.eval.max_matches),
      "--trace-every", std::to_string(daemon_template.trace_sample_every),
      "--trace-max-spans", std::to_string(daemon_template.trace_max_spans),
  };
  if (!node_caps.empty()) {
    base_args.push_back("--rt-node-inbox");
    base_args.push_back(node_caps);
  }

  handle->pids_.assign(static_cast<size_t>(processes), -1);
  for (int k = 0; k < processes; ++k) {
    std::vector<std::string> args = base_args;
    args.push_back("--process");
    args.push_back(std::to_string(k));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
      execv(bin.c_str(), argv.data());
      std::fprintf(stderr, "muse_node exec failed: %s\n",
                   std::strerror(errno));
      _exit(127);
    }
    if (pid < 0) {
      close(listen_fd);
      return Error{"cluster: fork failed"};
    }
    handle->pids_[static_cast<size_t>(k)] = pid;
  }

  // Phase 1: collect kHello from every daemon (any connect order).
  handle->daemon_fds_.assign(static_cast<size_t>(processes), -1);
  std::vector<uint32_t> ports(static_cast<size_t>(processes), 0);
  std::vector<FrameAssembler> assemblers(static_cast<size_t>(processes));
  for (int i = 0; i < processes; ++i) {
    const int fd = AcceptWithTimeout(listen_fd, kHandshakeTimeoutMs);
    if (fd < 0) {
      close(listen_fd);
      return Error{"cluster: daemon failed to connect (check its stderr)"};
    }
    FrameAssembler assembler;
    Result<NetFrame> hello =
        ReadFrameBlocking(fd, &assembler, kHandshakeTimeoutMs);
    if (!hello.ok() || hello.value().kind != FrameKind::kHello ||
        hello.value().process >= static_cast<uint32_t>(processes) ||
        handle->daemon_fds_[hello.value().process] != -1) {
      close(fd);
      close(listen_fd);
      return Error{"cluster: bad kHello during handshake"};
    }
    const uint32_t k = hello.value().process;
    handle->daemon_fds_[k] = fd;
    ports[k] = hello.value().listen_port;
    assemblers[k] = std::move(assembler);
  }
  close(listen_fd);

  // Every daemon checked in, and a daemon parses its spec/plan files
  // before it ever dials — the staged copies are dead weight from here
  // on. Remove them *now* instead of in the destructor: if this process
  // is later SIGKILLed mid-run, no ~ClusterHandle ever runs, and the
  // eager removal is what keeps /tmp free of muse_cluster_* residue.
  for (const std::string& f : handle->temp_files_) unlink(f.c_str());
  handle->temp_files_.clear();
  if (!handle->temp_dir_.empty()) rmdir(handle->temp_dir_.c_str());
  // temp_dir_ keeps naming the (now removed) path: the destructor's rmdir
  // degrades to a no-op, and tests can stat the path to pin the removal.

  // Phase 2: clock reference + peer directory (per-peer listen port and
  // host; hosts default to 127.0.0.1 when the spec names none).
  std::vector<std::string> hosts = daemon_template.peer_hosts;
  hosts.resize(static_cast<size_t>(processes));
  handle->clock_epoch_ = std::chrono::steady_clock::now();
  for (int k = 0; k < processes; ++k) {
    std::string frame;
    AppendPeersFrame(ElapsedUs(handle->clock_epoch_), ports, hosts, &frame);
    if (!SendAllBlocking(handle->daemon_fds_[static_cast<size_t>(k)],
                         frame)) {
      return Error{"cluster: failed to send kPeers"};
    }
  }

  // Phase 3: wait for every daemon to finish meshing.
  for (int k = 0; k < processes; ++k) {
    FrameAssembler& assembler = assemblers[static_cast<size_t>(k)];
    Result<NetFrame> ready = ReadFrameBlocking(
        handle->daemon_fds_[static_cast<size_t>(k)], &assembler,
        kHandshakeTimeoutMs);
    if (!ready.ok() || ready.value().kind != FrameKind::kReady) {
      return Error{"cluster: daemon failed to mesh (no kReady)"};
    }
    // kReady is the daemon's last handshake frame; this assembler is
    // discarded here (NetTransport starts with a fresh one per peer), so
    // any bytes already buffered past it would be silently dropped and
    // desync the data-plane stream. The protocol forbids them: fail the
    // handshake instead of losing frames.
    if (assembler.buffered_bytes() != 0) {
      return Error{"cluster: daemon sent data before handshake completed"};
    }
  }
  return handle;
}

int RunMuseNodeDaemon(const Deployment& dep, const DaemonConfig& config) {
  signal(SIGPIPE, SIG_IGN);
  const int k = config.process;
  const int processes = config.processes;

  NodeId max_node = 0;
  for (const Task& t : dep.tasks()) max_node = std::max(max_node, t.node);
  const size_t num_nodes = static_cast<size_t>(max_node) + 1;
  size_t local_count = 0;
  for (size_t n = 0; n < num_nodes; ++n) {
    if (static_cast<int>(n % static_cast<size_t>(processes)) == k) {
      ++local_count;
    }
  }

  uint16_t my_port = 0;
  const int listen_fd = ListenLocalhost(&my_port);
  if (listen_fd < 0) return 2;
  const int coord_fd = DialLocalhost(static_cast<uint16_t>(config.coord_port));
  if (coord_fd < 0) {
    close(listen_fd);
    return 2;
  }
  std::string frame;
  AppendHelloFrame(static_cast<uint32_t>(k), my_port, &frame);
  if (!SendAllBlocking(coord_fd, frame)) return 2;

  FrameAssembler coord_assembler;
  Result<NetFrame> peers =
      ReadFrameBlocking(coord_fd, &coord_assembler, kHandshakeTimeoutMs);
  if (!peers.ok() || peers.value().kind != FrameKind::kPeers ||
      peers.value().peer_ports.size() != static_cast<size_t>(processes)) {
    std::fprintf(stderr, "muse_node %d: bad kPeers\n", k);
    return 2;
  }
  // kPeers is the coordinator's last handshake frame on this connection;
  // the assembler dies here while the fd moves to NetTransport (fresh
  // per-peer assembler), so buffered residue would desync the stream.
  if (coord_assembler.buffered_bytes() != 0) {
    std::fprintf(stderr,
                 "muse_node %d: coordinator sent data before handshake "
                 "completed\n",
                 k);
    return 2;
  }
  const uint64_t coord_now_us = peers.value().coord_now_us;
  const auto peers_received_at = std::chrono::steady_clock::now();

  // Full daemon mesh: dial every lower index (at its advertised host —
  // empty means 127.0.0.1), accept every higher one.
  std::vector<int> mesh(static_cast<size_t>(processes), -1);
  const std::vector<std::string>& peer_hosts = peers.value().peer_hosts;
  for (int j = 0; j < k; ++j) {
    const std::string host = static_cast<size_t>(j) < peer_hosts.size()
                                 ? peer_hosts[static_cast<size_t>(j)]
                                 : std::string();
    const int fd = DialHost(
        host,
        static_cast<uint16_t>(peers.value().peer_ports[static_cast<size_t>(j)]));
    if (fd < 0) {
      std::fprintf(stderr, "muse_node %d: dial to peer %d failed\n", k, j);
      return 2;
    }
    frame.clear();
    AppendHelloFrame(static_cast<uint32_t>(k), 0, &frame);
    if (!SendAllBlocking(fd, frame)) return 2;
    mesh[static_cast<size_t>(j)] = fd;
  }
  for (int expected = processes - 1 - k; expected > 0; --expected) {
    const int fd = AcceptWithTimeout(listen_fd, kHandshakeTimeoutMs);
    if (fd < 0) {
      std::fprintf(stderr, "muse_node %d: mesh accept timed out\n", k);
      return 2;
    }
    FrameAssembler assembler;
    Result<NetFrame> hello =
        ReadFrameBlocking(fd, &assembler, kHandshakeTimeoutMs);
    if (!hello.ok() || hello.value().kind != FrameKind::kHello ||
        hello.value().process >= static_cast<uint32_t>(processes) ||
        mesh[hello.value().process] != -1 ||
        // The mesh kHello is the dialing peer's only handshake frame on
        // this connection, and this assembler is loop-local: buffered
        // bytes past it would be dropped on the floor.
        assembler.buffered_bytes() != 0) {
      std::fprintf(stderr, "muse_node %d: bad mesh kHello\n", k);
      return 2;
    }
    mesh[hello.value().process] = fd;
  }
  close(listen_fd);
  frame.clear();
  AppendReadyFrame(static_cast<uint32_t>(k), &frame);
  if (!SendAllBlocking(coord_fd, frame)) return 2;

  obs::RunTelemetry telemetry;
  NetTransport::Setup setup;
  setup.role = NetTransport::Role::kDaemon;
  setup.self_process = k;
  setup.processes = processes;
  setup.peer_fds = mesh;
  setup.peer_fds.push_back(coord_fd);
  setup.num_nodes = num_nodes;
  setup.num_shards =
      config.num_threads <= 0
          ? static_cast<int>(std::max<size_t>(1, local_count))
          : std::min<int>(config.num_threads,
                          static_cast<int>(std::max<size_t>(1, local_count)));
  setup.options = config.transport;
  auto transport =
      std::make_unique<NetTransport>(std::move(setup), &telemetry.registry);
  transport->SyncClock(coord_now_us + ElapsedUs(peers_received_at));

  RtExecutor::Hooks hooks;
  NetTransport* net = transport.get();
  hooks.record_match = [net](int query, const Match& m, uint64_t trace_id) {
    std::string f;
    AppendSinkMatchFrame(static_cast<uint32_t>(query), m,
                         TraceContext{trace_id, net->NowUs()}, &f);
    // In-flight until the coordinator records it — a quiescence probe must
    // not conclude while sink matches ride the wire.
    net->NoteFramesQueued(1);
    if (!net->SendToCoordinator(f)) net->NoteFramesDone(1);
    return true;
  };
  hooks.ack = [net](ControlKind kind) {
    std::string f;
    AppendAckFrame(kind, 1, &f);
    net->SendToCoordinator(f);
  };
  // No drift hook: daemon-side observations could never reach the
  // coordinator's detector, and partial streams would false-positive.

  RtExecutor executor(dep, config.eval, config.transport, transport.get(),
                      &telemetry.registry, hooks,
                      config.trace_sample_every > 0 ? config.trace_max_spans
                                                    : 0);
  if (local_count > 0) {
    executor.Start();
    executor.Join();
  } else {
    // Nothing to execute (more daemons than nodes): wait for the
    // coordinator's teardown kBye, or a wedge.
    while (!transport->wedged() && transport->ByesReceived() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  const bool wedged = transport->wedged();
  if (!wedged) {
    std::vector<StatEntry> stats;
    auto add = [&stats](NetStat stat, uint32_t index, uint64_t value) {
      stats.push_back(StatEntry{static_cast<uint8_t>(stat), index, value});
    };
    for (NodeId n : transport->LocalNodes()) {
      add(NetStat::kNodeInputs, n, executor.NodeInputs(n));
      add(NetStat::kNodeNetFrames, n, executor.NodeNetFrames(n));
      add(NetStat::kNodeNetBytes, n, executor.NodeNetBytes(n));
      add(NetStat::kNodeCrashes, n, executor.NodeCrashes(n));
      add(NetStat::kNodeDupsDropped, n,
          executor.nodes()[n].DuplicatesDropped());
      add(NetStat::kNodePeakBuffered, n,
          executor.nodes()[n].PeakBufferedMatches());
    }
    add(NetStat::kStalls, 0, transport->Stalls());
    add(NetStat::kWireRejects, 0, executor.WireRejects());
    frame.clear();
    AppendStatsFrame(stats, &frame);
    transport->SendToCoordinator(frame);

    if (config.trace_sample_every > 0) {
      obs::TraceLog log;
      for (const auto& buf : executor.span_buffers()) log.Absorb(*buf);
      for (const obs::TraceSpan& s : log.spans()) {
        frame.clear();
        AppendSpanFrame(s.trace_id, static_cast<uint8_t>(s.kind), s.node,
                        s.task, s.peer, s.query, s.start_us, s.dur_us,
                        &frame);
        transport->SendToCoordinator(frame);
      }
    }
    frame.clear();
    AppendByeFrame(0, &frame);
    // Mesh peers too: their EOF handling treats a post-kBye close as a
    // clean shutdown instead of a dead peer.
    for (int j = 0; j < processes; ++j) {
      if (j != k) transport->SendFrameToPeer(j, frame);
    }
    transport->SendToCoordinator(frame);
    transport->FlushPending(5000);
    // Bye barrier: close only after every peer said goodbye too.
    // Closing earlier races their final writes — the coordinator's own
    // kBye could hit our closed socket and read as a dead peer there.
    const auto bye_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!transport->wedged() &&
           transport->ByesReceived() < processes &&
           std::chrono::steady_clock::now() < bye_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  transport->Shutdown();
  return wedged ? 3 : 0;
}

}  // namespace muse::rt
