// muse_metrics — run a spec end-to-end (plan, deploy, execute) and report
// the run's telemetry: per-node and per-projection tables, latency
// quantiles, flow-trace summary, and the full time series.
//
// Usage:
//   muse_metrics <spec-file>
//     [--algorithm amuse|amuse-star|oop|centralized]  planner (default amuse)
//     [--duration-ms <n>]   simulated trace length (default 10000)
//     [--seed <n>]          trace RNG seed (default 1)
//     [--bucket-ms <n>]     snapshot cadence (default 250)
//     [--sample-rate <r>]   flow-trace sampling (default 0.01)
//     [--per-link]          also emit per-(src,dst) link series
//     [--compare]           also run the centralized plan and print the
//                           busiest-node partial-match curves side by side
//     [--json <file|->]     dump telemetry JSON (obs/export.h shape)
//     [--csv <file|->]      dump the time series as CSV
//     [--schema <file>]     validate the JSON dump against this schema;
//                           exits 1 when the document does not conform
//     [--runtime]           execute on the muse-rt multi-threaded runtime
//                           (src/rt) instead of the discrete-event
//                           simulator: real worker threads, wire frames,
//                           credit backpressure, and *wall-clock* latency
//     [--rt-threads <n>]    runtime worker threads (0 = one per node)
//     [--rt-inbox <frames>] per-node inbox credit window (default 1024)
//     [--rt-batch <frames>] per-link batch size (default 32)
//     [--rt-delay-us <us>]  injected per-hop delivery delay (default 0)
//     [--rt-rate <eps>]     Poisson source rate, events/sec (0 = unpaced)
//     [--rt-processes <n>]  muse-net: run as an n-daemon localhost cluster
//                           (muse_node processes) coordinated by this one
//     [--rt-wedge-ms <ms>]  wedge watchdog timeout (0 = wait forever)
//     [--rt-kill <p>,<ms>]  SIGKILL daemon p that many ms after launch
//                           (repeatable; the run then exits non-zero)
//     [--prove]             (with --runtime) run the muse-prove static
//                           analysis before executing and print a per-node
//                           comparison of proven bounds vs observed peaks;
//                           the prove_* gauges land in the telemetry/JSON
//
// In --runtime mode the simulator-only flags (--bucket-ms, --sample-rate,
// --per-link, --compare, --csv) are ignored: the runtime reports counters,
// gauges, and latency histograms (rt_* families) but no time series or
// flow traces. --json/--schema export the rt telemetry in the same
// obs/export.h shape.
//
// The spec format is documented in src/workload/spec.h; samples live in
// examples/specs/. With --json - the JSON goes to stdout and the report to
// stderr (mirrors muse_plan).
//
// Exit status: 0 success, 1 schema violations, write failures, or a
// wedged runtime run (including a killed cluster daemon), 2 usage,
// malformed flag values, unreadable/unparseable spec, or
// unreadable/unparseable schema.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/prove.h"
#include "src/common/numbers.h"
#include "src/common/rng.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/dist/simulator.h"
#include "src/net/trace.h"
#include "src/obs/export.h"
#include "src/obs/json_value.h"
#include "src/rt/cluster.h"
#include "src/rt/runtime.h"
#include "src/workload/spec.h"

namespace {

using namespace muse;

int Usage() {
  std::fprintf(stderr,
               "usage: muse_metrics <spec-file> [--algorithm amuse|amuse-star"
               "|oop|centralized]\n"
               "  [--duration-ms <n>] [--seed <n>] [--bucket-ms <n>] "
               "[--sample-rate <r>]\n"
               "  [--per-link] [--compare] [--json <file|->] "
               "[--csv <file|->] [--schema <file>]\n"
               "  [--runtime] [--rt-threads <n>] [--rt-inbox <frames>] "
               "[--rt-batch <frames>]\n"
               "  [--rt-delay-us <us>] [--rt-rate <eps>] "
               "[--rt-processes <n>] [--rt-wedge-ms <ms>]\n"
               "  [--rt-kill <p>,<ms>] [--prove]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool ReadFile(const std::string& path, std::string* content) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

struct Args {
  std::string spec_path;
  std::string algorithm = "amuse";
  uint64_t duration_ms = 10'000;
  uint64_t seed = 1;
  uint64_t bucket_ms = 250;
  double sample_rate = 0.01;
  bool per_link = false;
  bool compare = false;
  std::string json_path;
  std::string csv_path;
  std::string schema_path;
  bool runtime = false;
  bool prove = false;
  rt::RtOptions rt;
};

/// Plans the workload with `algorithm`; planner statistics go to `stats`.
MuseGraph BuildPlan(const std::string& algorithm,
                    const WorkloadCatalogs& catalogs, PlannerStats* stats) {
  if (algorithm == "amuse" || algorithm == "amuse-star") {
    PlannerOptions opts;
    opts.star = algorithm == "amuse-star";
    WorkloadPlan wp = PlanWorkloadAmuse(catalogs, opts);
    *stats = wp.aggregate_stats;
    return std::move(wp.combined);
  }
  if (algorithm == "oop") {
    WorkloadPlan wp = PlanWorkloadOop(catalogs);
    *stats = wp.aggregate_stats;
    return std::move(wp.combined);
  }
  return BuildCentralizedPlan(catalogs.Pointers(), 0);
}

/// Plans the workload with `algorithm` and executes the trace, exporting
/// the planner's statistics into the run's registry.
SimReport PlanAndRun(const std::string& algorithm,
                     const WorkloadCatalogs& catalogs,
                     const std::vector<Event>& trace, const Args& args,
                     MuseGraph* plan_out) {
  PlannerStats stats;
  MuseGraph plan = BuildPlan(algorithm, catalogs, &stats);

  Deployment dep(plan, catalogs.Pointers());
  SimOptions sim_opts;
  sim_opts.collect_matches = false;
  sim_opts.obs.snapshot_bucket_ms = args.bucket_ms;
  sim_opts.obs.trace_sample_rate = args.sample_rate;
  sim_opts.obs.per_link_series = args.per_link;
  DistributedSimulator sim(dep, sim_opts);
  SimReport report = sim.Run(trace);
  stats.ExportTo(&report.telemetry->registry, algorithm);
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return report;
}

uint64_t CounterValue(const obs::MetricsRegistry& registry,
                      const std::string& name, const obs::LabelSet& labels) {
  // Entries() iteration keeps this read-only (GetCounter would create).
  for (const obs::MetricsRegistry::Entry& e : registry.Entries()) {
    if (e.name == name && e.labels == labels &&
        e.kind == obs::MetricKind::kCounter) {
      return e.counter->Value();
    }
  }
  return 0;
}

void PrintNodeTable(std::FILE* out, const SimReport& report,
                    size_t num_nodes) {
  const obs::MetricsRegistry& reg = report.telemetry->registry;
  std::fprintf(out, "\nper-node:\n");
  std::fprintf(out, "  %-5s %10s %10s %12s %10s %12s %8s\n", "node", "inputs",
               "busy_ms", "peak_partial", "net_msgs", "net_bytes", "dup");
  for (size_t n = 0; n < num_nodes; ++n) {
    const obs::LabelSet labels{{"node", std::to_string(n)}};
    std::fprintf(
        out, "  %-5zu %10llu %10.1f %12llu %10llu %12llu %8llu\n", n,
        static_cast<unsigned long long>(
            CounterValue(reg, "node_inputs_total", labels)),
        static_cast<double>(CounterValue(reg, "node_busy_us_total", labels)) /
            1000.0,
        static_cast<unsigned long long>(
            n < report.peak_partial_matches.size()
                ? report.peak_partial_matches[n]
                : 0),
        static_cast<unsigned long long>(
            CounterValue(reg, "node_net_out_messages_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "node_net_out_bytes_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "node_dup_dropped_total", labels)));
  }
}

void PrintTaskTable(std::FILE* out, const SimReport& report,
                    const Deployment& dep, const TypeRegistry* type_reg) {
  const obs::MetricsRegistry& reg = report.telemetry->registry;
  std::fprintf(out, "\nper-projection:\n");
  std::fprintf(out, "  %10s %10s  %s\n", "inputs", "outputs", "task");
  for (const Task& t : dep.tasks()) {
    const obs::LabelSet labels{{"node", std::to_string(t.node)},
                               {"task", std::to_string(t.id)}};
    std::fprintf(out, "  %10llu %10llu  %s\n",
                 static_cast<unsigned long long>(
                     CounterValue(reg, "task_inputs_total", labels)),
                 static_cast<unsigned long long>(
                     CounterValue(reg, "task_outputs_total", labels)),
                 t.ToString(type_reg).c_str());
  }
}

void PrintLatency(std::FILE* out, const SimReport& report) {
  std::fprintf(out, "\nlatency (ms): %s\n",
               report.latency_ms.ToString().c_str());
  for (const obs::MetricsRegistry::Entry& e :
       report.telemetry->registry.Entries()) {
    if (e.name != "latency_ms" || e.histogram == nullptr ||
        e.histogram->Count() == 0) {
      continue;
    }
    std::fprintf(out,
                 "  %s: n=%llu p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
                 e.labels.ToString().c_str(),
                 static_cast<unsigned long long>(e.histogram->Count()),
                 e.histogram->Quantile(0.50), e.histogram->Quantile(0.90),
                 e.histogram->Quantile(0.99), e.histogram->Max());
  }
}

void PrintFlows(std::FILE* out, const SimReport& report) {
  const obs::FlowTracer& flows = report.telemetry->flows;
  if (!flows.enabled()) return;
  uint64_t completed = 0;
  size_t hops = 0;
  for (const obs::FlowSpan& s : flows.spans()) {
    completed += s.completed ? 1 : 0;
    hops += s.hops.size();
  }
  std::fprintf(out,
               "\nflows: sampled=%llu completed=%llu dropped=%llu "
               "avg_hops=%.1f\n",
               static_cast<unsigned long long>(flows.sampled()),
               static_cast<unsigned long long>(completed),
               static_cast<unsigned long long>(flows.dropped()),
               flows.sampled() > 0
                   ? static_cast<double>(hops) /
                         static_cast<double>(flows.sampled())
                   : 0.0);
}

void PrintRtNodeTable(std::FILE* out, const rt::RtReport& report,
                      size_t num_nodes) {
  const obs::MetricsRegistry& reg = report.telemetry->registry;
  std::fprintf(out, "\nper-node:\n");
  std::fprintf(out, "  %-5s %10s %10s %12s %8s %8s\n", "node", "inputs",
               "net_frms", "net_bytes", "dup", "crashes");
  for (size_t n = 0; n < num_nodes; ++n) {
    const obs::LabelSet labels{{"node", std::to_string(n)}};
    std::fprintf(
        out, "  %-5zu %10llu %10llu %12llu %8llu %8llu\n", n,
        static_cast<unsigned long long>(
            CounterValue(reg, "rt_node_inputs_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "rt_net_out_frames_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "rt_net_out_bytes_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "rt_node_dup_dropped_total", labels)),
        static_cast<unsigned long long>(
            CounterValue(reg, "rt_crashes_total", labels)));
  }
}

void PrintRtTaskTable(std::FILE* out, const rt::RtReport& report,
                      const Deployment& dep, const TypeRegistry* type_reg) {
  const obs::MetricsRegistry& reg = report.telemetry->registry;
  std::fprintf(out, "\nper-projection:\n");
  std::fprintf(out, "  %10s %10s  %s\n", "inputs", "outputs", "task");
  for (const Task& t : dep.tasks()) {
    const obs::LabelSet labels{{"node", std::to_string(t.node)},
                               {"task", std::to_string(t.id)}};
    std::fprintf(out, "  %10llu %10llu  %s\n",
                 static_cast<unsigned long long>(
                     CounterValue(reg, "rt_task_inputs_total", labels)),
                 static_cast<unsigned long long>(
                     CounterValue(reg, "rt_task_outputs_total", labels)),
                 t.ToString(type_reg).c_str());
  }
}

void PrintRtLatency(std::FILE* out, const rt::RtReport& report) {
  std::fprintf(out, "\nwall-clock latency (ms): %s\n",
               report.latency_ms.ToString().c_str());
  for (const obs::MetricsRegistry::Entry& e :
       report.telemetry->registry.Entries()) {
    if (e.name != "rt_latency_ms" || e.histogram == nullptr ||
        e.histogram->Count() == 0) {
      continue;
    }
    std::fprintf(out, "  %s: n=%llu p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                 e.labels.ToString().c_str(),
                 static_cast<unsigned long long>(e.histogram->Count()),
                 e.histogram->Quantile(0.50), e.histogram->Quantile(0.90),
                 e.histogram->Quantile(0.99), e.histogram->Max());
  }
}

double GaugeValue(const obs::MetricsRegistry& registry,
                  const std::string& name, const obs::LabelSet& labels) {
  for (const obs::MetricsRegistry::Entry& e : registry.Entries()) {
    if (e.name == name && e.labels == labels &&
        e.kind == obs::MetricKind::kGauge) {
      return e.gauge->Value();
    }
  }
  return 0;
}

/// Proven static bounds next to what the run actually did: the observed
/// peak must sit under the bound (the bound is a supremum), and the credit
/// window must sit at or above the minimum the deadlock rule demands.
void PrintProveComparison(std::FILE* out, const ProveReport& proof,
                          const rt::RtReport& report) {
  const obs::MetricsRegistry& reg = report.telemetry->registry;
  std::fprintf(out, "\nproven vs observed:\n");
  std::fprintf(out, "  %-5s %14s %14s %10s %10s %12s\n", "node",
               "state_bound", "peak_buffered", "inbox", "min_credit",
               "load_eps");
  for (const NodeCertificate& c : proof.nodes) {
    const obs::LabelSet labels{{"node", std::to_string(c.node)}};
    char bound[32];
    if (c.state_bounded) {
      std::snprintf(bound, sizeof(bound), "%.6g", c.state_bound);
    } else {
      std::snprintf(bound, sizeof(bound), "unbounded");
    }
    std::fprintf(out, "  %-5u %14s %14.0f %10zu %10zu %12.6g\n",
                 static_cast<unsigned>(c.node), bound,
                 GaugeValue(reg, "rt_node_peak_buffered", labels),
                 c.credit_window, c.min_credit, c.load_eps);
  }
}

/// The node with the highest peak partial-match load.
size_t BusiestNode(const SimReport& report) {
  size_t busiest = 0;
  for (size_t n = 1; n < report.peak_partial_matches.size(); ++n) {
    if (report.peak_partial_matches[n] >
        report.peak_partial_matches[busiest]) {
      busiest = n;
    }
  }
  return busiest;
}

/// §7.3 congestion view: the partial-match curve of each plan's busiest
/// node, one row per snapshot bucket. Single-sink (centralized/oOP) plans
/// funnel all partial matches through one node; the MuSE plan's busiest
/// node should stay visibly below.
void PrintComparison(std::FILE* out, const std::string& algorithm,
                     const SimReport& plan_report,
                     const SimReport& central_report) {
  const size_t plan_busy = BusiestNode(plan_report);
  const size_t central_busy = BusiestNode(central_report);
  const std::vector<obs::SeriesPoint>* plan_curve =
      plan_report.telemetry->series.Find(
          "node_partial_matches",
          obs::LabelSet{{"node", std::to_string(plan_busy)}});
  const std::vector<obs::SeriesPoint>* central_curve =
      central_report.telemetry->series.Find(
          "node_partial_matches",
          obs::LabelSet{{"node", std::to_string(central_busy)}});
  std::fprintf(out,
               "\nbusiest-node partial-match curve (%s node %zu vs "
               "centralized node %zu):\n",
               algorithm.c_str(), plan_busy, central_busy);
  std::fprintf(out, "  %10s %12s %12s\n", "t_ms", algorithm.c_str(),
               "centralized");
  const size_t rows =
      std::max(plan_curve != nullptr ? plan_curve->size() : 0,
               central_curve != nullptr ? central_curve->size() : 0);
  for (size_t i = 0; i < rows; ++i) {
    const obs::SeriesPoint* p =
        plan_curve != nullptr && i < plan_curve->size() ? &(*plan_curve)[i]
                                                        : nullptr;
    const obs::SeriesPoint* c =
        central_curve != nullptr && i < central_curve->size()
            ? &(*central_curve)[i]
            : nullptr;
    std::fprintf(out, "  %10llu %12.0f %12.0f\n",
                 static_cast<unsigned long long>(p != nullptr   ? p->t_ms
                                                 : c != nullptr ? c->t_ms
                                                                : 0),
                 p != nullptr ? p->value : 0.0, c != nullptr ? c->value : 0.0);
  }
  std::fprintf(out, "  peak: %s=%llu centralized=%llu\n", algorithm.c_str(),
               static_cast<unsigned long long>(
                   plan_report.max_peak_partial_matches),
               static_cast<unsigned long long>(
                   central_report.max_peak_partial_matches));
}

int ValidateAgainstSchema(const std::string& json,
                          const std::string& schema_path) {
  std::string schema_text;
  if (!ReadFile(schema_path, &schema_text)) return 2;
  Result<obs::JsonValue> schema = obs::ParseJson(schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "error: schema %s: %s\n", schema_path.c_str(),
                 schema.error().message.c_str());
    return 2;
  }
  Result<obs::JsonValue> doc = obs::ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: exported JSON does not re-parse: %s\n",
                 doc.error().message.c_str());
    return 1;
  }
  std::vector<std::string> violations =
      obs::ValidateJsonSchema(doc.value(), schema.value());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "schema violation: %s\n", v.c_str());
  }
  if (!violations.empty()) return 1;
  std::fprintf(stderr, "schema: telemetry JSON conforms to %s\n",
               schema_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.spec_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    // Strict value parsing: a malformed number must never be silently
    // read as 0 (e.g. `--rt-inbox abc` would otherwise run with an
    // *unbounded* inbox), and an unknown flag is an error, not a no-op.
    auto bad = [&](const char* flag) {
      std::fprintf(stderr, "muse_metrics: bad or missing value for %s\n",
                   flag);
      return Usage();
    };
    auto next_u64 = [&](uint64_t* v) {
      if (i + 1 >= argc) return false;
      std::optional<int64_t> p = ParseInt64(argv[++i]);
      if (!p || *p < 0) return false;
      *v = static_cast<uint64_t>(*p);
      return true;
    };
    auto next_int = [&](int* v) {
      if (i + 1 >= argc) return false;
      std::optional<int64_t> p = ParseInt64(argv[++i]);
      if (!p || *p < 0 || *p > INT32_MAX) return false;
      *v = static_cast<int>(*p);
      return true;
    };
    auto next_double = [&](double* v) {
      if (i + 1 >= argc) return false;
      std::optional<double> p = ParseDouble(argv[++i]);
      if (!p || *p < 0) return false;
      *v = *p;
      return true;
    };
    if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      args.algorithm = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      if (!next_u64(&args.duration_ms)) return bad("--duration-ms");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!next_u64(&args.seed)) return bad("--seed");
    } else if (std::strcmp(argv[i], "--bucket-ms") == 0) {
      if (!next_u64(&args.bucket_ms)) return bad("--bucket-ms");
    } else if (std::strcmp(argv[i], "--sample-rate") == 0) {
      if (!next_double(&args.sample_rate)) return bad("--sample-rate");
    } else if (std::strcmp(argv[i], "--per-link") == 0) {
      args.per_link = true;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      args.compare = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      args.schema_path = argv[++i];
    } else if (std::strcmp(argv[i], "--runtime") == 0) {
      args.runtime = true;
    } else if (std::strcmp(argv[i], "--prove") == 0) {
      args.prove = true;
    } else if (std::strcmp(argv[i], "--rt-threads") == 0) {
      if (!next_int(&args.rt.num_threads)) return bad("--rt-threads");
    } else if (std::strcmp(argv[i], "--rt-inbox") == 0) {
      uint64_t v = 0;
      if (!next_u64(&v)) return bad("--rt-inbox");
      args.rt.transport.inbox_capacity = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--rt-batch") == 0) {
      if (!next_int(&args.rt.transport.batch_max_frames)) {
        return bad("--rt-batch");
      }
    } else if (std::strcmp(argv[i], "--rt-delay-us") == 0) {
      if (!next_u64(&args.rt.transport.delivery_delay_us)) {
        return bad("--rt-delay-us");
      }
    } else if (std::strcmp(argv[i], "--rt-rate") == 0) {
      if (!next_double(&args.rt.source_rate_eps)) return bad("--rt-rate");
    } else if (std::strcmp(argv[i], "--rt-wedge-ms") == 0) {
      if (!next_u64(&args.rt.transport.wedge_timeout_ms)) {
        return bad("--rt-wedge-ms");
      }
    } else if (std::strcmp(argv[i], "--rt-processes") == 0) {
      if (!next_int(&args.rt.processes) || args.rt.processes < 1) {
        return bad("--rt-processes");
      }
      args.rt.transport_kind = rt::RtTransportKind::kCluster;
    } else if (std::strcmp(argv[i], "--rt-kill") == 0) {
      // <process>,<delay-ms>: SIGKILL that daemon mid-run (CI uses this
      // to assert the coordinator detects the death and exits non-zero).
      if (i + 1 >= argc) return bad("--rt-kill");
      const std::string v = argv[++i];
      const size_t comma = v.find(',');
      std::optional<int64_t> p = comma == std::string::npos
                                     ? std::nullopt
                                     : ParseInt64(v.substr(0, comma));
      std::optional<int64_t> ms = comma == std::string::npos
                                      ? std::nullopt
                                      : ParseInt64(v.substr(comma + 1));
      if (!p || *p < 0 || !ms || *ms < 0) return bad("--rt-kill");
      args.rt.kill_schedule.emplace_back(static_cast<int>(*p),
                                         static_cast<uint64_t>(*ms));
    } else {
      std::fprintf(stderr, "muse_metrics: unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  const bool known_algorithm =
      args.algorithm == "amuse" || args.algorithm == "amuse-star" ||
      args.algorithm == "oop" || args.algorithm == "centralized";
  if (!known_algorithm) return Usage();

  std::string spec_text;
  if (!ReadFile(args.spec_path, &spec_text)) return 2;
  Result<DeploymentSpec> spec = ParseDeploymentSpec(spec_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.error().message.c_str());
    return 2;
  }
  const DeploymentSpec& dep_spec = spec.value();

  std::FILE* out = args.json_path == "-" ? stderr : stdout;
  std::fprintf(out, "network: %d nodes, %d event types; %zu queries\n",
               dep_spec.network.num_nodes(), dep_spec.network.num_types(),
               dep_spec.workload.size());

  WorkloadCatalogs catalogs(dep_spec.workload, dep_spec.network);
  Rng rng(args.seed);
  TraceOptions trace_opts;
  trace_opts.duration_ms = args.duration_ms;
  std::vector<Event> trace =
      GenerateGlobalTrace(dep_spec.network, trace_opts, rng);
  std::fprintf(out, "trace: %zu events over %llu ms (seed %llu)\n",
               trace.size(),
               static_cast<unsigned long long>(args.duration_ms),
               static_cast<unsigned long long>(args.seed));

  if (args.runtime) {
    PlannerStats stats;
    MuseGraph plan = BuildPlan(args.algorithm, catalogs, &stats);
    Deployment dep(plan, catalogs.Pointers());
    rt::RtOptions rt_opts = args.rt;
    rt_opts.source_seed = args.seed;
    rt_opts.collect_matches = false;  // counts live on in rt_matches_total
    if (rt_opts.transport_kind == rt::RtTransportKind::kCluster) {
      // Daemons parse the same spec bytes this process just read, so
      // every side compiles the identical deployment.
      rt_opts.cluster_spec_text = spec_text;
      rt_opts.cluster_plan_json = PlanToJson(plan);
      rt_opts.muse_node_bin = rt::FindMuseNodeBinary(rt_opts.muse_node_bin);
      if (rt_opts.muse_node_bin.empty()) {
        std::fprintf(stderr,
                     "error: muse_node binary not found (looked next to "
                     "muse_metrics, ../tools, $MUSE_NODE_BIN)\n");
        return 2;
      }
    }

    ProveReport proof;
    if (args.prove) {
      ProveOptions prove_opts;
      prove_opts.rt = rt_opts;
      prove_opts.registry = &dep_spec.registry;
      proof = ProveDeployment(dep, catalogs.Pointers(), dep_spec.network,
                              prove_opts);
      std::fprintf(out, "\nmuse-prove: %s\n%s",
                   proof.certified() ? "certified" : "NOT certified",
                   proof.ToString().c_str());
    }

    rt::RtRuntime runtime(dep, rt_opts);
    rt::RtReport report = runtime.Run(trace);
    stats.ExportTo(&report.telemetry->registry, args.algorithm);
    if (args.prove) {
      ExportProveBounds(proof, &report.telemetry->registry);
    }

    std::fprintf(out, "\nalgorithm: %s (muse-rt, %d thread(s), %d "
                 "process(es))\n%s\n",
                 args.algorithm.c_str(), rt_opts.num_threads,
                 rt_opts.transport_kind == rt::RtTransportKind::kCluster
                     ? rt_opts.processes
                     : 1,
                 report.Summary().c_str());
    PrintRtNodeTable(out, report,
                     static_cast<size_t>(dep_spec.network.num_nodes()));
    PrintRtTaskTable(out, report, dep, &dep_spec.registry);
    PrintRtLatency(out, report);
    if (args.prove) PrintProveComparison(out, proof, report);

    // A wedged run produced truncated results; callers must see failure.
    int rc = report.wedged ? 1 : 0;
    if (!args.json_path.empty() || !args.schema_path.empty()) {
      const std::string json = obs::TelemetryToJson(*report.telemetry);
      if (args.json_path == "-") {
        std::printf("%s", json.c_str());
      } else if (!args.json_path.empty() &&
                 !WriteFile(args.json_path, json)) {
        rc = 1;
      }
      if (!args.schema_path.empty() && rc == 0) {
        rc = ValidateAgainstSchema(json, args.schema_path);
      }
    }
    return rc;
  }

  MuseGraph plan;
  SimReport report =
      PlanAndRun(args.algorithm, catalogs, trace, args, &plan);
  Deployment dep(plan, catalogs.Pointers());

  std::fprintf(out, "\nalgorithm: %s\n%s\n", args.algorithm.c_str(),
               report.Summary().c_str());
  PrintNodeTable(out, report,
                 static_cast<size_t>(dep_spec.network.num_nodes()));
  PrintTaskTable(out, report, dep, &dep_spec.registry);
  PrintLatency(out, report);
  PrintFlows(out, report);

  if (args.compare) {
    SimReport central =
        PlanAndRun("centralized", catalogs, trace, args, nullptr);
    PrintComparison(out, args.algorithm, report, central);
  }

  int rc = 0;
  if (!args.json_path.empty() || !args.schema_path.empty()) {
    const std::string json = obs::TelemetryToJson(*report.telemetry);
    if (args.json_path == "-") {
      std::printf("%s", json.c_str());
    } else if (!args.json_path.empty() && !WriteFile(args.json_path, json)) {
      rc = 1;
    }
    if (!args.schema_path.empty() && rc == 0) {
      rc = ValidateAgainstSchema(json, args.schema_path);
    }
  }
  if (!args.csv_path.empty()) {
    const std::string csv = obs::SeriesToCsv(report.telemetry->series);
    if (args.csv_path == "-") {
      std::printf("%s", csv.c_str());
    } else if (!WriteFile(args.csv_path, csv)) {
      rc = 1;
    }
  }
  return rc;
}
