// muse_plan — plan a CEP workload for an event-sourced network from the
// command line.
//
// Usage:
//   muse_plan <spec-file> [--algorithm amuse|amuse-star|oop|centralized]
//             [--threads <n>] [--explain] [--dot <file>] [--json <file>]
//
// The spec format is documented in src/workload/spec.h; samples live in
// examples/specs/. Prints the plan, its network cost, and the transmission
// ratio against centralized evaluation; optionally writes a Graphviz DOT
// rendering and/or a JSON serialization of the plan. `--json -` writes the
// JSON to stdout (and the report to stderr) so plans can be piped straight
// into muse_lint.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/plan_export.h"
#include "src/core/plan_json.h"
#include "src/workload/spec.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: muse_plan <spec-file> [--algorithm amuse|amuse-star|oop|"
      "centralized]\n                [--threads <n>] [--explain] "
      "[--dot <file>] [--json <file>]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muse;
  if (argc < 2) return Usage();
  std::string spec_path = argv[1];
  std::string algorithm = "amuse";
  std::string dot_path;
  std::string json_path;
  bool explain = false;
  int threads = 0;  // 0 = hardware concurrency, 1 = serial planner
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      return Usage();
    }
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<DeploymentSpec> spec = ParseDeploymentSpec(buffer.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.error().message.c_str());
    return 1;
  }

  const DeploymentSpec& dep = spec.value();
  // With --json -, stdout carries only the JSON document.
  std::FILE* out = json_path == "-" ? stderr : stdout;
  std::fprintf(out, "network: %d nodes, %d event types\n",
               dep.network.num_nodes(), dep.network.num_types());
  for (size_t i = 0; i < dep.workload.size(); ++i) {
    std::fprintf(out, "query %zu: %s\n", i,
                 dep.workload[i].ToString(&dep.registry).c_str());
  }

  WorkloadCatalogs catalogs(dep.workload, dep.network);
  double centralized = CentralizedWorkloadCost(dep.network, dep.workload);

  MuseGraph plan;
  double cost = 0;
  if (algorithm == "amuse" || algorithm == "amuse-star") {
    PlannerOptions opts;
    opts.star = algorithm == "amuse-star";
    opts.num_threads = threads;
    WorkloadPlan wp = PlanWorkloadAmuse(catalogs, opts);
    plan = std::move(wp.combined);
    cost = wp.total_cost;
  } else if (algorithm == "oop") {
    WorkloadPlan wp = PlanWorkloadOop(catalogs);
    plan = std::move(wp.combined);
    cost = wp.total_cost;
  } else if (algorithm == "centralized") {
    plan = BuildCentralizedPlan(catalogs.Pointers(), 0);
    cost = GraphCost(plan, catalogs.Pointers());
  } else {
    return Usage();
  }

  std::fprintf(out, "\nalgorithm: %s\n", algorithm.c_str());
  std::fprintf(out,
               "network cost: %.3f events/s (centralized: %.3f, "
               "ratio %.4f)\n",
               cost, centralized,
               centralized > 0 ? cost / centralized : 0.0);
  std::fprintf(out, "\n%s", plan.ToString(&dep.registry).c_str());
  if (explain) {
    std::fprintf(
        out, "\n%s",
        ExplainPlan(plan, catalogs.Pointers(), &dep.registry).c_str());
  }
  if (!dot_path.empty() &&
      !WriteFile(dot_path, ToDot(plan, catalogs.Pointers(), &dep.registry))) {
    return 1;
  }
  if (json_path == "-") {
    std::printf("%s", PlanToJson(plan).c_str());
  } else if (!json_path.empty() && !WriteFile(json_path, PlanToJson(plan))) {
    return 1;
  }
  return 0;
}
