// muse_node — one daemon process of a distributed muse-rt cluster.
//
// Usage (normally spawned by the coordinator, see src/rt/cluster.h):
//   muse_node --process <k> --processes <P> --coord-port <port>
//             --spec <file> --plan <file> [--threads <n>]
//             [--rt-inbox <frames>] [--rt-node-inbox <a,b,c>]
//             [--rt-batch <frames>] [--rt-delay-us <us>]
//             [--rt-wedge-ms <ms>] [--rt-slack-ms <ms>]
//             [--rt-max-matches <n>] [--trace-every <n>]
//             [--trace-max-spans <n>]
//
// The daemon recompiles the Deployment from the spec + plan files — the
// exact pipeline the coordinator ran — so both sides agree on task ids
// without ever serializing evaluator state. It owns the network nodes
// with node % processes == process, serves their inboxes over TCP, and
// exits 0 on a clean run, 3 when the transport wedged, 2 on setup errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/dist/deployment.h"
#include "src/rt/cluster.h"
#include "src/workload/spec.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: muse_node --process <k> --processes <P> "
               "--coord-port <port> --spec <file> --plan <file> [flags]\n"
               "(spawned by a muse-rt cluster coordinator; see "
               "src/rt/cluster.h)\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool ParseSizeList(const std::string& csv, std::vector<size_t>* out) {
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') return false;
    out->push_back(static_cast<size_t>(v));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muse;
  rt::DaemonConfig config;
  config.process = -1;
  std::string spec_path;
  std::string plan_path;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--process" && (value = next()) != nullptr) {
      config.process = std::atoi(value);
    } else if (flag == "--processes" && (value = next()) != nullptr) {
      config.processes = std::atoi(value);
    } else if (flag == "--coord-port" && (value = next()) != nullptr) {
      config.coord_port = std::atoi(value);
    } else if (flag == "--spec" && (value = next()) != nullptr) {
      spec_path = value;
    } else if (flag == "--plan" && (value = next()) != nullptr) {
      plan_path = value;
    } else if (flag == "--threads" && (value = next()) != nullptr) {
      config.num_threads = std::atoi(value);
    } else if (flag == "--rt-inbox" && (value = next()) != nullptr) {
      config.transport.inbox_capacity =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--rt-node-inbox" && (value = next()) != nullptr) {
      if (!ParseSizeList(value, &config.transport.node_inbox_capacity)) {
        std::fprintf(stderr, "muse_node: bad --rt-node-inbox list\n");
        return 2;
      }
    } else if (flag == "--rt-batch" && (value = next()) != nullptr) {
      config.transport.batch_max_frames = std::atoi(value);
    } else if (flag == "--rt-delay-us" && (value = next()) != nullptr) {
      config.transport.delivery_delay_us = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rt-wedge-ms" && (value = next()) != nullptr) {
      config.transport.wedge_timeout_ms = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rt-slack-ms" && (value = next()) != nullptr) {
      config.eval.eviction_slack_ms = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rt-max-matches" && (value = next()) != nullptr) {
      config.eval.max_matches = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace-every" && (value = next()) != nullptr) {
      config.trace_sample_every = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace-max-spans" && (value = next()) != nullptr) {
      config.trace_max_spans =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "muse_node: unknown or valueless flag '%s'\n",
                   flag.c_str());
      return Usage();
    }
  }
  if (config.process < 0 || config.processes < 1 ||
      config.process >= config.processes || config.coord_port <= 0 ||
      spec_path.empty() || plan_path.empty()) {
    return Usage();
  }

  std::string spec_text;
  std::string plan_json;
  if (!ReadFile(spec_path, &spec_text)) {
    std::fprintf(stderr, "muse_node: cannot read spec %s\n",
                 spec_path.c_str());
    return 2;
  }
  if (!ReadFile(plan_path, &plan_json)) {
    std::fprintf(stderr, "muse_node: cannot read plan %s\n",
                 plan_path.c_str());
    return 2;
  }

  Result<DeploymentSpec> spec = ParseDeploymentSpec(spec_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "muse_node: spec error: %s\n",
                 spec.error().message.c_str());
    return 2;
  }
  Result<MuseGraph> plan = PlanFromJson(plan_json);
  if (!plan.ok()) {
    std::fprintf(stderr, "muse_node: plan error: %s\n",
                 plan.error().message.c_str());
    return 2;
  }
  WorkloadCatalogs catalogs(spec.value().workload, spec.value().network);
  Deployment dep(plan.value(), catalogs.Pointers());

  return rt::RunMuseNodeDaemon(dep, config);
}
