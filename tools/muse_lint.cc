// muse_lint — static verifier for MuSE graph plans and their deployments.
//
// Usage:
//   muse_lint <spec-file> [plan.json | -]
//             [--algorithm amuse|amuse-star|oop|centralized]
//             [--no-rates] [--rate-tolerance <frac>] [--no-deploy]
//             [--strict]
//             [--obs-sample-rate <r>] [--obs-max-flows <n>]
//             [--obs-per-link] [--obs-per-match-labels]
//             [--obs-max-cardinality <n>]
//             [--rt-inbox <frames>] [--rt-batch <frames>]
//             [--rt-delay-us <us>] [--rt-slack-ms <ms>]
//             [--rt-node-inbox <node>=<frames>]... [--rt-processes <n>]
//             [--prove] [--prove-budget <entries>]
//             [--werror] [--sarif <file>]
//
// With a plan argument, the JSON plan (see src/core/plan_json.h; "-" reads
// stdin) is verified against the spec's workload; this is the path for
// vetting persisted or hand-edited plans, e.g.
//
//   muse_plan examples/specs/fraud.spec --json - | muse_lint examples/specs/fraud.spec -
//
// Without one, the workload is planned with the chosen algorithm and the
// fresh plan is verified — a self-check for planner changes.
//
// After the plan rules (M1xx-M5xx) pass without errors, the plan is
// compiled to tasks and the deployment wiring rules (M6xx) run as well;
// --no-deploy skips that stage. The --obs-* flags describe the telemetry
// configuration a run of this deployment would use (obs/telemetry.h);
// passing any of them additionally runs the M70x observability rules,
// which estimate metric/series label cardinality against the deployment's
// size and flag unbounded label domains. The --rt-* flags likewise
// describe a muse-rt execution config (rt/runtime.h) and enable the M80x
// runtime rules: unbounded inboxes (M800) and undeliverable batches
// (M801) are errors, an unbounded eviction horizon (M802) a warning.
//
// --prove runs the muse-prove whole-deployment safety analysis (M90x,
// analysis/prove.h) after the plan and deployment rules pass: credit-
// deadlock detection over the deployed link graph, per-node memory-bound
// certification (against --prove-budget when given), watermark liveness,
// and capacity feasibility. The --rt-* flags describe the config being
// proven; --rt-node-inbox overrides one node's credit window (repeatable),
// and --rt-processes proves against a muse-net cluster deployment, where
// every inbox window splits into n+1 per-sender credit shares — a window
// that passes M900 single-process can fail it across sockets.
// The per-node certificate table is printed after the diagnostics.
//
// Diagnostics go to stdout, one per line, in compiler style:
//
//   error[M200/input-gap] vertex 5 (q0:{A,C}@n3): input coverage gap: ...
//
// --sarif additionally writes the report as a SARIF 2.1.0 log (written
// even when clean, so CI upload steps never miss a file). Exit status: 0
// clean (or warnings only, unless --werror / its alias --strict), 1
// diagnostics reported, 2 usage or input errors.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "src/analysis/prove.h"
#include "src/analysis/sarif.h"
#include "src/analysis/verify.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/workload/spec.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: muse_lint <spec-file> [plan.json | -]\n"
      "                 [--algorithm amuse|amuse-star|oop|centralized]\n"
      "                 [--no-rates] [--rate-tolerance <frac>] "
      "[--no-deploy]\n"
      "                 [--strict]\n"
      "                 [--obs-sample-rate <r>] [--obs-max-flows <n>]\n"
      "                 [--obs-per-link] [--obs-per-match-labels]\n"
      "                 [--obs-max-cardinality <n>]\n"
      "                 [--rt-inbox <frames>] [--rt-batch <frames>]\n"
      "                 [--rt-delay-us <us>] [--rt-slack-ms <ms>]\n"
      "                 [--rt-node-inbox <node>=<frames>]...\n"
      "                 [--rt-processes <n>]\n"
      "                 [--prove] [--prove-budget <entries>]\n"
      "                 [--werror] [--sarif <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muse;
  if (argc < 2) return Usage();
  std::string spec_path = argv[1];
  std::string plan_path;
  std::string algorithm = "amuse";
  VerifyOptions options;
  bool deploy = true;
  bool werror = false;
  obs::ObsOptions obs;
  bool check_obs = false;
  rt::RtOptions rt_options;
  bool check_rt = false;
  bool prove = false;
  uint64_t prove_budget = 0;
  std::string sarif_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (std::strcmp(argv[i], "--no-rates") == 0) {
      options.check_rates = false;
    } else if (std::strcmp(argv[i], "--rate-tolerance") == 0 &&
               i + 1 < argc) {
      char* end = nullptr;
      options.rate_tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || options.rate_tolerance < 0) {
        std::fprintf(stderr, "error: bad --rate-tolerance '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-deploy") == 0) {
      deploy = false;
    } else if (std::strcmp(argv[i], "--strict") == 0 ||
               std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--prove") == 0) {
      prove = true;
    } else if (std::strcmp(argv[i], "--prove-budget") == 0 && i + 1 < argc) {
      char* end = nullptr;
      prove_budget = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || prove_budget == 0) {
        std::fprintf(stderr, "error: bad --prove-budget '%s' "
                     "(want a positive entry count)\n", argv[i]);
        return 2;
      }
      prove = true;
    } else if (std::strcmp(argv[i], "--sarif") == 0 && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-sample-rate") == 0 &&
               i + 1 < argc) {
      obs.trace_sample_rate = std::strtod(argv[++i], nullptr);
      check_obs = true;
    } else if (std::strcmp(argv[i], "--obs-max-flows") == 0 && i + 1 < argc) {
      obs.max_flows =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      check_obs = true;
    } else if (std::strcmp(argv[i], "--obs-per-link") == 0) {
      obs.per_link_series = true;
      check_obs = true;
    } else if (std::strcmp(argv[i], "--obs-per-match-labels") == 0) {
      obs.label_per_match = true;
      check_obs = true;
    } else if (std::strcmp(argv[i], "--obs-max-cardinality") == 0 &&
               i + 1 < argc) {
      obs.max_label_cardinality =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      check_obs = true;
    } else if (std::strcmp(argv[i], "--rt-inbox") == 0 && i + 1 < argc) {
      rt_options.transport.inbox_capacity =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      check_rt = true;
    } else if (std::strcmp(argv[i], "--rt-batch") == 0 && i + 1 < argc) {
      rt_options.transport.batch_max_frames =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      check_rt = true;
    } else if (std::strcmp(argv[i], "--rt-delay-us") == 0 && i + 1 < argc) {
      rt_options.transport.delivery_delay_us =
          std::strtoull(argv[++i], nullptr, 10);
      check_rt = true;
    } else if (std::strcmp(argv[i], "--rt-slack-ms") == 0 && i + 1 < argc) {
      rt_options.eval.eviction_slack_ms =
          std::strtoull(argv[++i], nullptr, 10);
      check_rt = true;
    } else if (std::strcmp(argv[i], "--rt-node-inbox") == 0 && i + 1 < argc) {
      const char* arg = argv[++i];
      const char* eq = std::strchr(arg, '=');
      char* end = nullptr;
      const unsigned long long node =
          eq != nullptr ? std::strtoull(arg, &end, 10) : 0;
      char* frames_end = nullptr;
      const unsigned long long frames =
          eq != nullptr ? std::strtoull(eq + 1, &frames_end, 10) : 0;
      if (eq == nullptr || end == arg || end != eq || frames_end == eq + 1 ||
          *frames_end != '\0') {
        std::fprintf(stderr, "error: bad --rt-node-inbox '%s' "
                     "(want <node>=<frames>)\n", arg);
        return 2;
      }
      auto& per_node = rt_options.transport.node_inbox_capacity;
      if (per_node.size() <= node) per_node.resize(node + 1, 0);
      per_node[node] = static_cast<size_t>(frames);
      check_rt = true;
    } else if (std::strcmp(argv[i], "--rt-processes") == 0 && i + 1 < argc) {
      const int n = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (n < 1) {
        std::fprintf(stderr, "error: --rt-processes wants a count >= 1\n");
        return 2;
      }
      rt_options.processes = n;
      rt_options.transport_kind = rt::RtTransportKind::kCluster;
      check_rt = true;
    } else if (argv[i][0] != '-' || std::strcmp(argv[i], "-") == 0) {
      if (!plan_path.empty()) return Usage();
      plan_path = argv[i];
    } else {
      return Usage();
    }
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", spec_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<DeploymentSpec> spec = ParseDeploymentSpec(buffer.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", spec_path.c_str(),
                 spec.error().message.c_str());
    return 2;
  }
  const DeploymentSpec& dep = spec.value();
  WorkloadCatalogs catalogs(dep.workload, dep.network);
  options.registry = &dep.registry;

  MuseGraph plan;
  std::string plan_name;
  if (!plan_path.empty()) {
    plan_name = plan_path == "-" ? "<stdin>" : plan_path;
    std::string json;
    if (plan_path == "-") {
      std::stringstream all;
      all << std::cin.rdbuf();
      json = all.str();
    } else {
      std::ifstream pin(plan_path);
      if (!pin) {
        std::fprintf(stderr, "error: cannot read %s\n", plan_path.c_str());
        return 2;
      }
      std::stringstream all;
      all << pin.rdbuf();
      json = all.str();
    }
    Result<MuseGraph> parsed = PlanFromJson(json);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", plan_name.c_str(),
                   parsed.error().message.c_str());
      return 2;
    }
    plan = std::move(parsed.value());
  } else {
    plan_name = "plan(" + algorithm + ")";
    if (algorithm == "amuse" || algorithm == "amuse-star") {
      PlannerOptions opts;
      opts.star = algorithm == "amuse-star";
      plan = PlanWorkloadAmuse(catalogs, opts).combined;
    } else if (algorithm == "oop") {
      plan = PlanWorkloadOop(catalogs).combined;
    } else if (algorithm == "centralized") {
      plan = BuildCentralizedPlan(catalogs.Pointers(), 0);
    } else {
      return Usage();
    }
  }

  VerifyReport report = VerifyPlan(plan, catalogs.Pointers(), options);
  int num_tasks = -1;
  std::unique_ptr<Deployment> deployment;
  if (report.ok() && (deploy || prove)) {
    deployment = std::make_unique<Deployment>(plan, catalogs.Pointers());
    num_tasks = deployment->num_tasks();
    report.MergeFrom(VerifyDeployment(*deployment, dep.network, options));
  }
  if (check_obs) {
    report.MergeFrom(VerifyObsConfig(
        obs, dep.network.num_nodes(),
        num_tasks >= 0 ? num_tasks : plan.num_vertices(),
        static_cast<int>(dep.workload.size())));
  }
  if (check_rt || prove) {
    report.MergeFrom(VerifyRtConfig(rt_options));
  }
  std::string certificate_table;
  if (prove && report.ok() && deployment != nullptr) {
    ProveOptions prove_options;
    prove_options.rt = rt_options;
    prove_options.state_budget = prove_budget;
    prove_options.registry = &dep.registry;
    ProveReport proof = ProveDeployment(*deployment, catalogs.Pointers(),
                                        dep.network, prove_options);
    report.MergeFrom(proof.findings);
    certificate_table = proof.CertificateTable();
  }

  for (const Diagnostic& d : report.diagnostics()) {
    std::printf("%s\n", d.ToString().c_str());
  }
  if (!certificate_table.empty()) {
    std::printf("%s", certificate_table.c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif_out(sarif_path);
    if (!sarif_out) {
      std::fprintf(stderr, "error: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    sarif_out << SarifReport(report, spec_path);
  }
  if (report.clean()) {
    std::printf("%s: clean: %d vertices, %zu edges", plan_name.c_str(),
                plan.num_vertices(), plan.edges().size());
    if (num_tasks >= 0) std::printf(", %d tasks", num_tasks);
    std::printf("\n");
    return 0;
  }
  std::printf("muse_lint: %d error(s), %d warning(s) in %s\n",
              report.errors(), report.warnings(), plan_name.c_str());
  if (report.errors() > 0 || werror) return 1;
  return 0;
}
