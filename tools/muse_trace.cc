// muse_trace — run a spec on the muse-rt multi-threaded runtime with
// sampled causal tracing (obs/trace.h) and rate-drift detection
// (obs/drift.h), then summarize where each traced event's latency went and
// whether the live rates still match the planner-input stats.
//
// Usage:
//   muse_trace <spec-file>
//     [--algorithm amuse|amuse-star|oop|centralized]  planner (default amuse)
//     [--duration-ms <n>]   trace length in virtual ms (default 10000)
//     [--seed <n>]          trace RNG seed (default 1)
//     [--sample-every <n>]  trace 1 in n source events (default 64; the
//                           sampler hashes Event::seq, so sampling is
//                           deterministic and cannot change match sets)
//     [--max-spans <n>]     per-thread span buffer capacity (default 65536)
//     [--top <k>]           slowest completed traces to print (default 3)
//     [--rt-threads <n>]    worker threads (0 = one per node)
//     [--rt-inbox <frames>] per-node inbox credit window (default 1024)
//     [--rt-batch <frames>] per-link batch size (default 32)
//     [--rt-delay-us <us>]  injected per-hop delivery delay (default 0)
//     [--rt-rate <eps>]     Poisson source pacing, events/sec (0 = unpaced)
//     [--out <file|->]      write the Chrome/Perfetto trace-event JSON
//                           (load in ui.perfetto.dev or chrome://tracing)
//     [--schema <file>]     validate the trace JSON against this schema;
//                           exits 1 when it does not conform
//     [--drift-window-ms <n>]  drift observation window (default 1000)
//     [--drift-z <z>]          z-score gate (default 6)
//     [--drift-ratio <r>]      ratio-band gate (default 1.5)
//     [--rate-shift <f>]    synthetic drift: compress event times after the
//                           shift point by f, so the observed rate jumps f×
//                           mid-trace (f=2 doubles it)
//     [--shift-at-ms <t>]   when the shift starts (default duration/2)
//     [--expect-drift]      exit 1 unless the detector flags drift
//     [--expect-stationary] exit 1 if the detector flags drift
//
// Exit status: 0 success, 1 schema violations, write failures, or a failed
// --expect-* assertion, 2 usage or unreadable/unparseable inputs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/trace.h"
#include "src/obs/json_value.h"
#include "src/obs/trace.h"
#include "src/rt/runtime.h"
#include "src/workload/spec.h"

namespace {

using namespace muse;

int Usage() {
  std::fprintf(
      stderr,
      "usage: muse_trace <spec-file> [--algorithm amuse|amuse-star|oop"
      "|centralized]\n"
      "  [--duration-ms <n>] [--seed <n>] [--sample-every <n>] "
      "[--max-spans <n>] [--top <k>]\n"
      "  [--rt-threads <n>] [--rt-inbox <frames>] [--rt-batch <frames>]\n"
      "  [--rt-delay-us <us>] [--rt-rate <eps>] [--out <file|->] "
      "[--schema <file>]\n"
      "  [--drift-window-ms <n>] [--drift-z <z>] [--drift-ratio <r>]\n"
      "  [--rate-shift <f>] [--shift-at-ms <t>] [--expect-drift] "
      "[--expect-stationary]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool ReadFile(const std::string& path, std::string* content) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

struct Args {
  std::string spec_path;
  std::string algorithm = "amuse";
  uint64_t duration_ms = 10'000;
  uint64_t seed = 1;
  uint64_t sample_every = 64;
  uint64_t max_spans = 1 << 16;
  uint64_t top_k = 3;
  std::string out_path;
  std::string schema_path;
  double rate_shift = 0;       // 0 = no synthetic shift
  uint64_t shift_at_ms = 0;    // 0 = duration/2
  bool expect_drift = false;
  bool expect_stationary = false;
  rt::RtOptions rt;
};

MuseGraph BuildPlan(const std::string& algorithm,
                    const WorkloadCatalogs& catalogs) {
  if (algorithm == "amuse" || algorithm == "amuse-star") {
    PlannerOptions opts;
    opts.star = algorithm == "amuse-star";
    return std::move(PlanWorkloadAmuse(catalogs, opts).combined);
  }
  if (algorithm == "oop") {
    return std::move(PlanWorkloadOop(catalogs).combined);
  }
  return BuildCentralizedPlan(catalogs.Pointers(), 0);
}

/// Synthetic mid-trace rate shift: event times past `shift_at_ms` are
/// compressed toward it by `factor`, so the same events arrive `factor`×
/// faster — the observed rate of every type jumps while the planner
/// snapshot still describes the stationary head. Time order (and
/// therefore Event::seq order) is preserved.
void ApplyRateShift(std::vector<Event>* trace, uint64_t shift_at_ms,
                    double factor) {
  for (Event& e : *trace) {
    if (e.time <= shift_at_ms) continue;
    e.time = shift_at_ms +
             static_cast<uint64_t>(
                 static_cast<double>(e.time - shift_at_ms) / factor);
  }
}

int ValidateAgainstSchema(const std::string& json,
                          const std::string& schema_path) {
  std::string schema_text;
  if (!ReadFile(schema_path, &schema_text)) return 2;
  Result<obs::JsonValue> schema = obs::ParseJson(schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "error: schema %s: %s\n", schema_path.c_str(),
                 schema.error().message.c_str());
    return 2;
  }
  Result<obs::JsonValue> doc = obs::ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: exported JSON does not re-parse: %s\n",
                 doc.error().message.c_str());
    return 1;
  }
  std::vector<std::string> violations =
      obs::ValidateJsonSchema(doc.value(), schema.value());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "schema violation: %s\n", v.c_str());
  }
  if (!violations.empty()) return 1;
  std::fprintf(stderr, "schema: trace JSON conforms to %s\n",
               schema_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.spec_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto next = [&](uint64_t* v) {
      if (i + 1 >= argc) return false;
      *v = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      args.algorithm = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      if (!next(&args.duration_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!next(&args.seed)) return Usage();
    } else if (std::strcmp(argv[i], "--sample-every") == 0) {
      if (!next(&args.sample_every)) return Usage();
    } else if (std::strcmp(argv[i], "--max-spans") == 0) {
      if (!next(&args.max_spans)) return Usage();
    } else if (std::strcmp(argv[i], "--top") == 0) {
      if (!next(&args.top_k)) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      args.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      args.schema_path = argv[++i];
    } else if (std::strcmp(argv[i], "--drift-window-ms") == 0) {
      if (!next(&args.rt.drift.window_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--drift-z") == 0 && i + 1 < argc) {
      args.rt.drift.z_threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--drift-ratio") == 0 && i + 1 < argc) {
      args.rt.drift.ratio_threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--rate-shift") == 0 && i + 1 < argc) {
      args.rate_shift = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--shift-at-ms") == 0) {
      if (!next(&args.shift_at_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--expect-drift") == 0) {
      args.expect_drift = true;
    } else if (std::strcmp(argv[i], "--expect-stationary") == 0) {
      args.expect_stationary = true;
    } else if (std::strcmp(argv[i], "--rt-threads") == 0 && i + 1 < argc) {
      args.rt.num_threads =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rt-inbox") == 0) {
      uint64_t v = 0;
      if (!next(&v)) return Usage();
      args.rt.transport.inbox_capacity = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--rt-batch") == 0 && i + 1 < argc) {
      args.rt.transport.batch_max_frames =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rt-delay-us") == 0) {
      if (!next(&args.rt.transport.delivery_delay_us)) return Usage();
    } else if (std::strcmp(argv[i], "--rt-rate") == 0 && i + 1 < argc) {
      args.rt.source_rate_eps = std::strtod(argv[++i], nullptr);
    } else {
      return Usage();
    }
  }
  const bool known_algorithm =
      args.algorithm == "amuse" || args.algorithm == "amuse-star" ||
      args.algorithm == "oop" || args.algorithm == "centralized";
  if (!known_algorithm) return Usage();
  if (args.sample_every == 0) {
    std::fprintf(stderr, "error: --sample-every must be >= 1\n");
    return Usage();
  }
  if (args.rate_shift != 0 && args.rate_shift < 1.0) {
    std::fprintf(stderr, "error: --rate-shift factor must be >= 1\n");
    return Usage();
  }

  std::string spec_text;
  if (!ReadFile(args.spec_path, &spec_text)) return 2;
  Result<DeploymentSpec> spec = ParseDeploymentSpec(spec_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.error().message.c_str());
    return 2;
  }
  const DeploymentSpec& dep_spec = spec.value();

  std::FILE* out = args.out_path == "-" ? stderr : stdout;
  std::fprintf(out, "network: %d nodes, %d event types; %zu queries\n",
               dep_spec.network.num_nodes(), dep_spec.network.num_types(),
               dep_spec.workload.size());

  WorkloadCatalogs catalogs(dep_spec.workload, dep_spec.network);
  Rng rng(args.seed);
  TraceOptions trace_opts;
  trace_opts.duration_ms = args.duration_ms;
  std::vector<Event> trace =
      GenerateGlobalTrace(dep_spec.network, trace_opts, rng);
  if (args.rate_shift > 1.0) {
    const uint64_t shift_at =
        args.shift_at_ms > 0 ? args.shift_at_ms : args.duration_ms / 2;
    ApplyRateShift(&trace, shift_at, args.rate_shift);
    std::fprintf(out, "synthetic rate shift: %.2fx after %llu ms\n",
                 args.rate_shift,
                 static_cast<unsigned long long>(shift_at));
  }
  std::fprintf(out, "trace: %zu events (seed %llu), sampling 1/%llu\n",
               trace.size(), static_cast<unsigned long long>(args.seed),
               static_cast<unsigned long long>(args.sample_every));

  MuseGraph plan = BuildPlan(args.algorithm, catalogs);
  Deployment dep(plan, catalogs.Pointers());
  rt::RtOptions rt_opts = args.rt;
  rt_opts.source_seed = args.seed;
  rt_opts.collect_matches = false;
  rt_opts.trace_sample_every = args.sample_every;
  rt_opts.trace_max_spans_per_thread =
      static_cast<size_t>(args.max_spans);

  rt::RtRuntime runtime(dep, rt_opts);
  rt::RtReport report = runtime.Run(trace);

  std::fprintf(out, "\nalgorithm: %s (muse-rt, %d thread(s))\n%s\n",
               args.algorithm.c_str(), rt_opts.num_threads,
               report.Summary().c_str());

  if (report.trace_log != nullptr) {
    const obs::TraceSummary summary =
        report.trace_log->Summarize(static_cast<size_t>(args.top_k));
    std::fprintf(out, "\nlatency breakdown:\n%s", summary.ToString().c_str());
  }
  if (!report.drift_report.streams.empty()) {
    std::fprintf(out, "\nrate drift vs planner snapshot:\n%s",
                 report.drift_report.ToString().c_str());
  }

  int rc = 0;
  if (report.trace_log != nullptr &&
      (!args.out_path.empty() || !args.schema_path.empty())) {
    const std::string json = obs::ExportTrace(*report.trace_log);
    if (args.out_path == "-") {
      std::printf("%s", json.c_str());
    } else if (!args.out_path.empty() && !WriteFile(args.out_path, json)) {
      rc = 1;
    }
    if (!args.schema_path.empty() && rc == 0) {
      rc = ValidateAgainstSchema(json, args.schema_path);
    }
  }
  if (args.expect_drift && !report.drifted) {
    std::fprintf(stderr,
                 "expectation failed: --expect-drift but drifted=false "
                 "(drift_score %.3f)\n",
                 report.drift_score);
    rc = 1;
  }
  if (args.expect_stationary && report.drifted) {
    std::fprintf(stderr,
                 "expectation failed: --expect-stationary but drifted=true "
                 "(drift_score %.3f)\n",
                 report.drift_score);
    rc = 1;
  }
  return rc;
}
