// muse_adapt — run a spec on the muse-rt runtime with the muse-adapt
// closed loop attached: the rate-drift detector feeds an AdaptController
// that re-plans against the observed rates and live-migrates the running
// graph. A synthetic mid-trace rate shift (--rate-shift) makes the
// planner's snapshot stale on purpose, so the whole
// drift -> replan -> migrate pipeline can be exercised and asserted on
// from CI.
//
// Usage:
//   muse_adapt <spec-file>
//     [--algorithm amuse|amuse-star|oop|centralized]  initial plan
//     [--duration-ms <n>]   trace length in virtual ms (default 10000)
//     [--seed <n>]          trace RNG seed (default 1)
//     [--slack-ms <n>]      eviction slack (default 2000)
//     [--rt-threads <n>]    worker threads (0 = one per node)
//     [--rt-inbox <frames>] per-node inbox credit window (default 1024)
//     [--rt-batch <frames>] per-link batch size (default 32)
//     [--rt-rate <eps>]     Poisson source pacing, events/sec (0 = unpaced)
//     [--rate-shift <f>]    synthetic drift: compress event times after the
//                           shift point by f (observed rates jump f x)
//     [--shift-at-ms <t>]   when the shift starts (default duration/2)
//     [--drift-window-ms <n>] [--drift-z <z>] [--drift-ratio <r>]
//     [--confirm <n>]       drift reports before re-planning (default 2)
//     [--cooldown-ms <n>]   trace-time between migrations (default 1000)
//     [--max-migrations <n>] migration budget for the run (default 4)
//     [--check-interval-ms <n>] drift poll period (default 250)
//     [--out <file|->]      write the adapt telemetry JSON
//     [--schema <file>]     validate the telemetry JSON against this schema
//     [--expect-drift]      exit 1 unless the detector flags drift
//     [--expect-migration]  exit 1 unless at least one migration completed
//     [--expect-stationary] exit 1 if any migration happened
//
// Exit status: 0 success, 1 schema violations, write failures, or a failed
// --expect-* assertion, 2 usage or unreadable/unparseable inputs.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/adapt/controller.h"
#include "src/adapt/policy.h"
#include "src/common/rng.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/trace.h"
#include "src/obs/json_value.h"
#include "src/rt/runtime.h"
#include "src/workload/spec.h"

namespace {

using namespace muse;

int Usage() {
  std::fprintf(
      stderr,
      "usage: muse_adapt <spec-file> [--algorithm amuse|amuse-star|oop"
      "|centralized]\n"
      "  [--duration-ms <n>] [--seed <n>] [--slack-ms <n>]\n"
      "  [--rt-threads <n>] [--rt-inbox <frames>] [--rt-batch <frames>] "
      "[--rt-rate <eps>]\n"
      "  [--rate-shift <f>] [--shift-at-ms <t>]\n"
      "  [--drift-window-ms <n>] [--drift-z <z>] [--drift-ratio <r>]\n"
      "  [--confirm <n>] [--cooldown-ms <n>] [--max-migrations <n>]\n"
      "  [--check-interval-ms <n>] [--out <file|->] [--schema <file>]\n"
      "  [--expect-drift] [--expect-migration] [--expect-stationary]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool ReadFile(const std::string& path, std::string* content) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

struct Args {
  std::string spec_path;
  std::string algorithm = "amuse";
  uint64_t duration_ms = 10'000;
  uint64_t seed = 1;
  std::string out_path;
  std::string schema_path;
  double rate_shift = 0;     // 0 = no synthetic shift
  uint64_t shift_at_ms = 0;  // 0 = duration/2
  bool expect_drift = false;
  bool expect_migration = false;
  bool expect_stationary = false;
  adapt::AdaptPolicy policy;
  rt::RtOptions rt;
};

MuseGraph BuildPlan(const std::string& algorithm,
                    const WorkloadCatalogs& catalogs) {
  if (algorithm == "amuse" || algorithm == "amuse-star") {
    PlannerOptions opts;
    opts.star = algorithm == "amuse-star";
    return std::move(PlanWorkloadAmuse(catalogs, opts).combined);
  }
  if (algorithm == "oop") {
    return std::move(PlanWorkloadOop(catalogs).combined);
  }
  return BuildCentralizedPlan(catalogs.Pointers(), 0);
}

/// Same synthetic shift as muse_trace: event times past `shift_at_ms` are
/// compressed toward it by `factor`, so observed rates jump factor x while
/// the planner snapshot still describes the stationary head.
void ApplyRateShift(std::vector<Event>* trace, uint64_t shift_at_ms,
                    double factor) {
  for (Event& e : *trace) {
    if (e.time <= shift_at_ms) continue;
    e.time = shift_at_ms +
             static_cast<uint64_t>(
                 static_cast<double>(e.time - shift_at_ms) / factor);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The adapt telemetry document (tools/adapt_schema.json describes it).
std::string ExportAdaptTelemetry(const Args& args,
                                 const rt::RtReport& report,
                                 const adapt::AdaptController& controller) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"algorithm\": \"" << JsonEscape(args.algorithm) << "\",\n";
  os << "  \"duration_ms\": " << args.duration_ms << ",\n";
  os << "  \"seed\": " << args.seed << ",\n";
  os << "  \"rate_shift\": " << args.rate_shift << ",\n";
  os << "  \"drifted\": " << (report.drifted ? "true" : "false") << ",\n";
  os << "  \"drift_score\": " << report.drift_score << ",\n";
  os << "  \"migrations\": " << report.migrations << ",\n";
  os << "  \"migration_aborts\": " << report.migration_aborts << ",\n";
  os << "  \"replans\": " << controller.Replans() << ",\n";
  os << "  \"migration_state_events\": " << report.migration_state_events
     << ",\n";
  os << "  \"migration_state_bytes\": " << report.migration_state_bytes
     << ",\n";
  os << "  \"migration_pause_us\": [";
  for (size_t i = 0; i < report.migration_pause_us.size(); ++i) {
    if (i > 0) os << ", ";
    os << report.migration_pause_us[i];
  }
  os << "],\n";
  os << "  \"transitions\": [";
  const auto& transitions = controller.transitions();
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    {\"to\": \""
       << adapt::AdaptController::StateName(transitions[i].to)
       << "\", \"trace_ms\": " << transitions[i].trace_ms << ", \"note\": \""
       << JsonEscape(transitions[i].note) << "\"}";
  }
  if (!transitions.empty()) os << "\n  ";
  os << "],\n";
  uint64_t matches = 0;
  for (const auto& per_query : report.matches_per_query) {
    matches += per_query.size();
  }
  os << "  \"matches\": " << matches << ",\n";
  os << "  \"wedged\": " << (report.wedged ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

int ValidateAgainstSchema(const std::string& json,
                          const std::string& schema_path) {
  std::string schema_text;
  if (!ReadFile(schema_path, &schema_text)) return 2;
  Result<obs::JsonValue> schema = obs::ParseJson(schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "error: schema %s: %s\n", schema_path.c_str(),
                 schema.error().message.c_str());
    return 2;
  }
  Result<obs::JsonValue> doc = obs::ParseJson(json);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: exported JSON does not re-parse: %s\n",
                 doc.error().message.c_str());
    return 1;
  }
  std::vector<std::string> violations =
      obs::ValidateJsonSchema(doc.value(), schema.value());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "schema violation: %s\n", v.c_str());
  }
  if (!violations.empty()) return 1;
  std::fprintf(stderr, "schema: adapt telemetry conforms to %s\n",
               schema_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.spec_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto next = [&](uint64_t* v) {
      if (i + 1 >= argc) return false;
      *v = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (std::strcmp(argv[i], "--algorithm") == 0 && i + 1 < argc) {
      args.algorithm = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      if (!next(&args.duration_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!next(&args.seed)) return Usage();
    } else if (std::strcmp(argv[i], "--slack-ms") == 0) {
      if (!next(&args.rt.eval.eviction_slack_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      args.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      args.schema_path = argv[++i];
    } else if (std::strcmp(argv[i], "--drift-window-ms") == 0) {
      if (!next(&args.rt.drift.window_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--drift-z") == 0 && i + 1 < argc) {
      args.rt.drift.z_threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--drift-ratio") == 0 && i + 1 < argc) {
      args.rt.drift.ratio_threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--rate-shift") == 0 && i + 1 < argc) {
      args.rate_shift = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--shift-at-ms") == 0) {
      if (!next(&args.shift_at_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--confirm") == 0) {
      uint64_t v = 0;
      if (!next(&v)) return Usage();
      args.policy.confirm_reports = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--cooldown-ms") == 0) {
      if (!next(&args.policy.cooldown_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--max-migrations") == 0) {
      if (!next(&args.policy.max_migrations)) return Usage();
    } else if (std::strcmp(argv[i], "--check-interval-ms") == 0) {
      if (!next(&args.rt.adapt_check_interval_ms)) return Usage();
    } else if (std::strcmp(argv[i], "--expect-drift") == 0) {
      args.expect_drift = true;
    } else if (std::strcmp(argv[i], "--expect-migration") == 0) {
      args.expect_migration = true;
    } else if (std::strcmp(argv[i], "--expect-stationary") == 0) {
      args.expect_stationary = true;
    } else if (std::strcmp(argv[i], "--rt-threads") == 0 && i + 1 < argc) {
      args.rt.num_threads =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rt-inbox") == 0) {
      uint64_t v = 0;
      if (!next(&v)) return Usage();
      args.rt.transport.inbox_capacity = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--rt-batch") == 0 && i + 1 < argc) {
      args.rt.transport.batch_max_frames =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rt-rate") == 0 && i + 1 < argc) {
      args.rt.source_rate_eps = std::strtod(argv[++i], nullptr);
    } else {
      return Usage();
    }
  }
  const bool known_algorithm =
      args.algorithm == "amuse" || args.algorithm == "amuse-star" ||
      args.algorithm == "oop" || args.algorithm == "centralized";
  if (!known_algorithm) return Usage();
  if (args.rate_shift != 0 && args.rate_shift < 1.0) {
    std::fprintf(stderr, "error: --rate-shift factor must be >= 1\n");
    return Usage();
  }

  std::string spec_text;
  if (!ReadFile(args.spec_path, &spec_text)) return 2;
  Result<DeploymentSpec> spec = ParseDeploymentSpec(spec_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.error().message.c_str());
    return 2;
  }
  const DeploymentSpec& dep_spec = spec.value();

  std::FILE* out = args.out_path == "-" ? stderr : stdout;
  std::fprintf(out, "network: %d nodes, %d event types; %zu queries\n",
               dep_spec.network.num_nodes(), dep_spec.network.num_types(),
               dep_spec.workload.size());

  WorkloadCatalogs catalogs(dep_spec.workload, dep_spec.network);
  Rng rng(args.seed);
  TraceOptions trace_opts;
  trace_opts.duration_ms = args.duration_ms;
  std::vector<Event> trace =
      GenerateGlobalTrace(dep_spec.network, trace_opts, rng);
  if (args.rate_shift > 1.0) {
    const uint64_t shift_at =
        args.shift_at_ms > 0 ? args.shift_at_ms : args.duration_ms / 2;
    args.shift_at_ms = shift_at;
    ApplyRateShift(&trace, shift_at, args.rate_shift);
    std::fprintf(out, "synthetic rate shift: %.2fx after %llu ms\n",
                 args.rate_shift, static_cast<unsigned long long>(shift_at));
  }
  std::fprintf(out, "trace: %zu events (seed %llu)\n", trace.size(),
               static_cast<unsigned long long>(args.seed));

  MuseGraph plan = BuildPlan(args.algorithm, catalogs);
  Deployment dep(plan, catalogs.Pointers());

  adapt::AdaptController controller(dep_spec.workload, dep_spec.network,
                                    &dep, args.policy);
  rt::RtOptions rt_opts = args.rt;
  rt_opts.source_seed = args.seed;
  rt_opts.adapt = &controller;
  // Re-planned generations may place tasks on any network node.
  rt_opts.min_nodes = static_cast<size_t>(dep_spec.network.num_nodes());
  if (rt_opts.eval.eviction_slack_ms == 0) {
    rt_opts.eval.eviction_slack_ms = 2000;
  }

  rt::RtRuntime runtime(dep, rt_opts);
  rt::RtReport report = runtime.Run(trace);

  std::fprintf(out, "\nalgorithm: %s (muse-rt, %d thread(s))\n%s\n",
               args.algorithm.c_str(), rt_opts.num_threads,
               report.Summary().c_str());
  std::fprintf(out, "\ncontroller (%llu replans, %llu rejected):\n",
               static_cast<unsigned long long>(controller.Replans()),
               static_cast<unsigned long long>(controller.rejected()));
  for (const auto& t : controller.transitions()) {
    std::fprintf(out, "  %6llu ms  -> %-10s %s\n",
                 static_cast<unsigned long long>(t.trace_ms),
                 adapt::AdaptController::StateName(t.to), t.note.c_str());
  }

  int rc = 0;
  if (!args.out_path.empty() || !args.schema_path.empty()) {
    const std::string json = ExportAdaptTelemetry(args, report, controller);
    if (args.out_path == "-") {
      std::printf("%s", json.c_str());
    } else if (!args.out_path.empty() && !WriteFile(args.out_path, json)) {
      rc = 1;
    }
    if (!args.schema_path.empty() && rc == 0) {
      rc = ValidateAgainstSchema(json, args.schema_path);
    }
  }
  if (args.expect_drift && !report.drifted) {
    std::fprintf(stderr,
                 "expectation failed: --expect-drift but drifted=false "
                 "(drift_score %.3f)\n",
                 report.drift_score);
    rc = 1;
  }
  if (args.expect_migration && report.migrations == 0) {
    std::fprintf(stderr,
                 "expectation failed: --expect-migration but no migration "
                 "completed (%llu aborts, %llu replans)\n",
                 static_cast<unsigned long long>(report.migration_aborts),
                 static_cast<unsigned long long>(controller.Replans()));
    rc = 1;
  }
  if (args.expect_stationary && report.migrations > 0) {
    std::fprintf(stderr,
                 "expectation failed: --expect-stationary but %llu "
                 "migration(s) ran\n",
                 static_cast<unsigned long long>(report.migrations));
    rc = 1;
  }
  return rc;
}
