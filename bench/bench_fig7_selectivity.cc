// Fig. 7a/7b: transmission ratio vs minimal predicate selectivity. Pairwise
// selectivities are drawn uniformly from [min, max(0.2, min)]; small values
// shrink projection output rates, enlarging the set of beneficial
// projections and enabling more multi-sink placements (§7.2).

#include <algorithm>

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void RunSweep(const char* title, const SweepConfig& base, uint64_t seed) {
  PrintTitle(title);
  PrintHeader({"min_selectivity", "aMuSE", "aMuSE*", "oOP"});
  for (double min_sel : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    SweepConfig cfg = base;
    cfg.min_selectivity = min_sel;
    cfg.max_selectivity = std::max(0.2, min_sel + 0.001);
    RatioPoint p = RunRatioPoint(cfg, seed);
    PrintRow(
        {Fmt(min_sel), FmtDist(p.amuse), FmtDist(p.star), FmtDist(p.oop)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  SweepConfig base;
  RunSweep("Fig 7a: transmission ratio vs min selectivity (default)", base,
           701);
  RunSweep("Fig 7b: transmission ratio vs min selectivity (large)",
           base.Large(), 702);
  return muse::bench::FinishBench(argc, argv);
}
