// Table 3: case-study transmission ratios on the (synthetic) Google cluster
// trace — Query 1 (SEQ), Query 2 (AND), and the joint workload (QWL),
// aMuSE vs oOP. With every node producing every type at homogeneous rates,
// oOP degenerates to near-centralized shipping (>90%), while aMuSE's
// projections + multi-sink placements avoid moving the frequent types
// (single-digit percentages). See §7.3.

#include "bench/bench_common.h"
#include "src/workload/cluster_trace.h"

namespace muse::bench {
namespace {

struct Row {
  const char* label;
  std::vector<Query> workload;
};

void Run() {
  Rng rng(731);
  ClusterTraceOptions opts;  // 20 nodes, default trace
  ClusterTrace ct = GenerateClusterTrace(opts, rng);
  std::printf("trace: %zu events, %llu tasks, %llu jobs, 9 types, %d nodes\n",
              ct.events.size(),
              static_cast<unsigned long long>(ct.task_count),
              static_cast<unsigned long long>(ct.job_count), opts.num_nodes);

  Query q1 = ct.MakeQuery1();
  Query q2 = ct.MakeQuery2();
  std::vector<Row> rows;
  rows.push_back({"SEQ (Query 1)", {q1}});
  rows.push_back({"AND (Query 2)", {q2}});
  rows.push_back({"QWL (both)", {q1, q2}});

  PrintTitle("Table 3: case study transmission ratio");
  PrintHeader({"workload", "aMuSE", "oOP"});
  for (Row& row : rows) {
    WorkloadCatalogs catalogs(row.workload, ct.network);
    WorkloadPlan amuse =
        PlanWorkloadAmuse(catalogs, BenchPlannerOptions(false));
    WorkloadPlan oop = PlanWorkloadOop(catalogs);
    PrintRow({row.label, Fmt(amuse.transmission_ratio),
              Fmt(oop.transmission_ratio)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  muse::bench::Run();
  return muse::bench::FinishBench(argc, argv);
}
