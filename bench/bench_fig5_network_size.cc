// Fig. 5c/5d: transmission ratio vs network size. Unlike the event-node
// ratio sweep, growing the network grows the number of producers per type
// without bound, which widens the aMuSE / aMuSE* gap (§7.2).

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void RunSweep(const char* title, const SweepConfig& base, uint64_t seed) {
  PrintTitle(title);
  PrintHeader({"num_nodes", "aMuSE", "aMuSE*", "oOP"});
  for (int nodes : {10, 20, 30, 40, 50}) {
    SweepConfig cfg = base;
    cfg.num_nodes = nodes;
    RatioPoint p = RunRatioPoint(cfg, seed);
    PrintRow({std::to_string(nodes), FmtDist(p.amuse), FmtDist(p.star),
              FmtDist(p.oop)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  SweepConfig base;
  RunSweep("Fig 5c: transmission ratio vs network size (default workload)",
           base, 503);
  SweepConfig large = base.Large();
  RunSweep("Fig 5d: transmission ratio vs network size (large workload)",
           large, 504);
  return muse::bench::FinishBench(argc, argv);
}
