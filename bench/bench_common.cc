#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/obs/export.h"

namespace muse::bench {
namespace {

int g_bench_threads = 0;  // 0 = hardware concurrency (PlannerOptions default)

/// Consumes a `--threads <n>` / `--threads=<n>` occurrence at argv[i];
/// returns the number of argv slots it spans (0 if argv[i] is not the
/// flag).
int MatchThreadsFlag(int argc, char** argv, int i, int* out) {
  if (std::strncmp(argv[i], "--threads=", 10) == 0) {
    *out = std::atoi(argv[i] + 10);
    return 1;
  }
  if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
    *out = std::atoi(argv[i + 1]);
    return 2;
  }
  return 0;
}

}  // namespace

obs::MetricsRegistry& BenchRegistry() {
  static obs::MetricsRegistry registry;
  return registry;
}

void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    int threads = 0;
    const int span = MatchThreadsFlag(argc, argv, i, &threads);
    if (span > 0) {
      g_bench_threads = threads;
      i += span - 1;
    }
  }
}

int BenchThreads() { return g_bench_threads; }

PlannerOptions BenchPlannerOptions(bool star) {
  PlannerOptions opts;
  opts.star = star;
  // Trimmed search budgets: measured to keep plan quality within a few
  // percent of the full-budget plans on the large configuration while
  // roughly halving sweep wall time (see EXPERIMENTS.md).
  opts.combo.max_combinations = 6000;
  opts.max_graphs = 150'000;
  opts.metrics = &BenchRegistry();
  opts.num_threads = g_bench_threads;
  return opts;
}

int FinishBench(int argc, char** argv) {
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    int threads = 0;
    const int span = MatchThreadsFlag(argc, argv, i, &threads);
    if (span > 0) {
      i += span - 1;  // consumed by InitBench
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads <n>] [--metrics-out <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (metrics_out.empty()) return 0;
  const std::string json = obs::RegistryToJson(BenchRegistry());
  if (metrics_out == "-") {
    std::printf("%s", json.c_str());
    return 0;
  }
  std::ofstream out(metrics_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  out << json;
  return 0;
}

RatioPoint RunRatioPoint(const SweepConfig& config, uint64_t base_seed) {
  std::vector<double> amuse_ratios;
  std::vector<double> star_ratios;
  std::vector<double> oop_ratios;
  RatioPoint point;
  for (int s = 0; s < config.seeds; ++s) {
    Rng rng(base_seed + static_cast<uint64_t>(s) * 7919);
    NetworkGenOptions nopts;
    nopts.num_nodes = config.num_nodes;
    nopts.num_types = config.num_types;
    nopts.event_node_ratio = config.event_node_ratio;
    nopts.rate_skew = config.rate_skew;
    Network net = MakeRandomNetwork(nopts, rng);

    SelectivityModel model(config.num_types, config.min_selectivity,
                           config.max_selectivity, rng);
    QueryGenOptions qopts;
    qopts.num_queries = config.num_queries;
    qopts.avg_primitives = config.avg_primitives;
    qopts.num_types = config.num_types;
    std::vector<Query> workload = GenerateWorkload(qopts, model, rng);
    WorkloadCatalogs catalogs(workload, net);

    // Ratio sweeps run the sequential pass only (refinement sweeps are an
    // extension of ours and would double the planning time of the large
    // configurations; Table 3 / Fig. 8 keep them on).
    PlannerOptions amuse_opts = BenchPlannerOptions(false);
    amuse_opts.refine_passes = 0;
    PlannerOptions star_opts = BenchPlannerOptions(true);
    star_opts.refine_passes = 0;
    WorkloadPlan amuse = PlanWorkloadAmuse(catalogs, amuse_opts);
    WorkloadPlan star = PlanWorkloadAmuse(catalogs, star_opts);
    WorkloadPlan oop = PlanWorkloadOop(catalogs, &BenchRegistry());

    amuse_ratios.push_back(amuse.transmission_ratio);
    star_ratios.push_back(star.transmission_ratio);
    oop_ratios.push_back(oop.transmission_ratio);
    point.amuse_seconds += amuse.aggregate_stats.elapsed_seconds;
    point.star_seconds += star.aggregate_stats.elapsed_seconds;
    point.amuse_projections += amuse.aggregate_stats.projections_considered;
    point.star_projections += star.aggregate_stats.projections_considered;
  }
  point.amuse = Distribution::Of(std::move(amuse_ratios));
  point.star = Distribution::Of(std::move(star_ratios));
  point.oop = Distribution::Of(std::move(oop_ratios));
  point.amuse_seconds /= config.seeds;
  point.star_seconds /= config.seeds;
  point.amuse_projections /= config.seeds;
  point.star_projections /= config.seeds;
  return point;
}

void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

namespace {
void PrintCells(const std::vector<std::string>& cells, bool rule) {
  for (const std::string& c : cells) std::printf("%-22s", c.c_str());
  std::printf("\n");
  if (rule) {
    for (size_t i = 0; i < cells.size(); ++i) std::printf("%-22s", "------");
    std::printf("\n");
  }
}
}  // namespace

void PrintHeader(const std::vector<std::string>& columns) {
  PrintCells(columns, /*rule=*/true);
}

void PrintRow(const std::vector<std::string>& cells) {
  PrintCells(cells, /*rule=*/false);
}

std::string Fmt(double v) {
  char buf[48];
  if (v != 0 && (v < 0.001 || v >= 100000)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string FmtDist(const Distribution& d) {
  return Fmt(d.p50) + " [" + Fmt(d.min) + ".." + Fmt(d.max) + "]";
}

}  // namespace muse::bench
