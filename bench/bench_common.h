#ifndef MUSE_BENCH_BENCH_COMMON_H_
#define MUSE_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/core/multi_query.h"
#include "src/dist/metrics.h"
#include "src/net/network_gen.h"
#include "src/obs/metrics.h"
#include "src/workload/query_gen.h"

namespace muse::bench {

/// One experiment point of the simulation study (§7.2): network + workload
/// parameters. Defaults are the paper's default configuration.
struct SweepConfig {
  int num_nodes = 20;
  int num_types = 15;
  double event_node_ratio = 0.5;
  double rate_skew = 1.5;
  double min_selectivity = 0.01;
  double max_selectivity = 0.2;
  int num_queries = 5;
  int avg_primitives = 6;
  /// Independent repetitions (distinct seeds); the paper reports variance
  /// via box plots.
  int seeds = 3;

  /// The paper's "large" configuration for scalability experiments:
  /// 50 nodes, 20 types, 15 queries with 8 primitives on average.
  SweepConfig Large() const {
    SweepConfig c = *this;
    c.num_nodes = 50;
    c.num_types = 20;
    c.num_queries = 15;
    c.avg_primitives = 8;
    c.seeds = 2;
    return c;
  }
};

/// Transmission ratios of one experiment point, per strategy, aggregated
/// over seeds.
struct RatioPoint {
  Distribution amuse;
  Distribution star;
  Distribution oop;
  /// Planner statistics summed over queries, averaged over seeds.
  double amuse_seconds = 0;
  double star_seconds = 0;
  double amuse_projections = 0;
  double star_projections = 0;
};

/// Runs the three strategies on `config.seeds` random instances and
/// aggregates transmission ratios (network cost / centralized cost, §7.1).
RatioPoint RunRatioPoint(const SweepConfig& config, uint64_t base_seed);

/// Planner options used by all benches (guarded combination enumeration).
/// Wires the process-global BenchRegistry() as the metrics sink, so every
/// planner run of the bench contributes to the --metrics-out dump, and the
/// `--threads` count captured by InitBench as num_threads.
PlannerOptions BenchPlannerOptions(bool star);

/// Common bench prologue: captures `--threads <n>` / `--threads=<n>`
/// (planner parallelism for every subsequent BenchPlannerOptions; 0 =
/// hardware concurrency, 1 = serial). Every bench main starts with
/// `InitBench(argc, argv);`. Unknown flags are left for FinishBench to
/// reject.
void InitBench(int argc, char** argv);

/// Thread count captured by InitBench (0 until seen).
int BenchThreads();

/// Process-global metrics registry of this bench binary.
obs::MetricsRegistry& BenchRegistry();

/// Common bench epilogue: handles `--metrics-out <path>` by dumping
/// BenchRegistry() as JSON ("-" writes to stdout). Every bench main ends
/// with `return FinishBench(argc, argv);` — returns 0 when the flag is
/// absent or the dump succeeded, 1/2 on write/usage errors.
int FinishBench(int argc, char** argv);

/// Prints a Markdown-ish table header / row; `columns` are right-aligned.
void PrintTitle(const std::string& title);
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);

/// Formats a double compactly ("0.0123", "1.2e-05").
std::string Fmt(double v);
/// Formats a distribution as "p50 [min..max]".
std::string FmtDist(const Distribution& d);

}  // namespace muse::bench

#endif  // MUSE_BENCH_BENCH_COMMON_H_
