// Google-benchmark microbenchmarks of the CEP engine: event throughput of
// centralized evaluation for SEQ/AND patterns, with and without equality
// join keys, measured in events/second.
//
// `--scaling` switches to the evaluator-throughput mode instead: it runs
// each scenario `--reps` times over a fixed 20s trace (seed 5), keeps the
// best wall time, checks the total match count is identical across reps
// (evaluation is deterministic; any divergence fails the run), and writes
// the measurements to BENCH_engine.json (`--out <path>` overrides, "-" =
// stdout). CI diffs this file against the committed baseline in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cep/engine.h"
#include "src/cep/parser.h"
#include "src/net/trace.h"

namespace muse::bench {
namespace {

struct EngineInstance {
  TypeRegistry reg;
  Query query;
  std::vector<Event> trace;
  EvaluatorOptions opts;

  EngineInstance(const std::string& pattern, uint64_t window_ms,
                 int64_t key_cardinality, double rate_per_type = 25.0,
                 uint64_t eviction_slack_ms = 0) {
    Query q = ParseQuery(pattern, &reg).value();
    q.set_window(window_ms);
    query = q;
    opts.eviction_slack_ms = eviction_slack_ms;
    Network net(4, reg.size());
    for (NodeId n = 0; n < 4; ++n) {
      for (int t = 0; t < reg.size(); ++t) {
        net.AddProducer(n, static_cast<EventTypeId>(t));
      }
    }
    for (int t = 0; t < reg.size(); ++t) {
      net.SetRate(static_cast<EventTypeId>(t), rate_per_type);
    }
    TraceOptions topts;
    topts.duration_ms = 20'000;
    topts.attr_cardinality[0] = key_cardinality;
    Rng rng(5);
    trace = GenerateGlobalTrace(net, topts, rng);
  }

  /// One full pass: feed the trace, flush, return the match count.
  uint64_t RunOnce() const {
    QueryEngine engine(query, opts);
    std::vector<Match> out;
    uint64_t matches = 0;
    for (const Event& e : trace) {
      engine.OnEvent(e, &out);
      matches += out.size();
      out.clear();
    }
    engine.Flush(&out);
    matches += out.size();
    return matches;
  }

  /// One full pass through the columnar path: the trace is cut into
  /// consecutive batches whose time span stays within `max_span_ms` (set it
  /// to the eviction slack so every batch takes the order-insensitive bulk
  /// path), each fed through QueryEngine::OnBatch. Same match multiset as
  /// RunOnce — the scaling harness fails if the counts diverge.
  uint64_t RunOnceBatched(uint64_t max_span_ms) const {
    QueryEngine engine(query, opts);
    std::vector<Match> out;
    uint64_t matches = 0;
    EventBatch batch;
    uint64_t batch_start = 0;
    for (const Event& e : trace) {
      if (!batch.empty() && e.time - batch_start > max_span_ms) {
        engine.OnBatch(batch, &out);
        matches += out.size();
        out.clear();
        batch.Clear();
      }
      if (batch.empty()) batch_start = e.time;
      batch.Append(e);
    }
    if (!batch.empty()) {
      engine.OnBatch(batch, &out);
      matches += out.size();
      out.clear();
    }
    engine.Flush(&out);
    matches += out.size();
    return matches;
  }
};

void RunEngine(benchmark::State& state, EngineInstance& inst) {
  uint64_t matches = 0;
  for (auto _ : state) {
    matches += inst.RunOnce();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(inst.trace.size()));
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_SeqKeyed(benchmark::State& state) {
  EngineInstance inst(
      "SEQ(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0", 500, 1000);
  RunEngine(state, inst);
}
BENCHMARK(BM_SeqKeyed);

void BM_AndKeyed(benchmark::State& state) {
  EngineInstance inst(
      "AND(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0", 500, 1000);
  RunEngine(state, inst);
}
BENCHMARK(BM_AndKeyed);

void BM_SeqUnkeyedSmallWindow(benchmark::State& state) {
  EngineInstance inst("SEQ(A, B)", 100, 4);
  RunEngine(state, inst);
}
BENCHMARK(BM_SeqUnkeyedSmallWindow);

void BM_NseqKeyedWindow(benchmark::State& state) {
  EngineInstance inst("NSEQ(A, B, D)", 200, 8);
  RunEngine(state, inst);
}
BENCHMARK(BM_NseqKeyedWindow);

struct Scenario {
  const char* name;
  const char* pattern;
  uint64_t window_ms;
  int64_t key_cardinality;
  double rate_per_type;
};

/// The keyed scenarios run the hot-key regime (a couple of heavy keys, a
/// window much shorter than the buffer retention) instead of the BM_
/// variants' 1000 spread keys: long per-key buffers where most entries are
/// outside the window is where buffered-join cost concentrates, and the
/// regime the evaluator's MaxTime-ordered buffers are built for.
constexpr Scenario kScenarios[] = {
    {"seq_keyed", "SEQ(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0",
     25, 2, 25.0},
    {"and_keyed", "AND(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0",
     25, 2, 25.0},
    {"seq_unkeyed_small_window", "SEQ(A, B)", 100, 4, 25.0},
    {"nseq_keyed_window", "NSEQ(A, B, D)", 200, 8, 25.0},
};

/// Selective-predicate scenarios (muse-batch): unary modulus filters keep
/// only a small fraction of each primitive stream, which is precisely where
/// columnar ingestion pays off — the scalar path buffers and joins every
/// event and only rejects at candidate assembly, while the batch kernels
/// drop failing rows in one flat pass before they ever reach a buffer.
/// Scalar and batch runs share one EngineInstance (same trace, same
/// evaluator options); the batch span equals the eviction slack so every
/// batch takes the bulk path.
struct SelectiveScenario {
  const char* name;
  const char* pattern;
  uint64_t window_ms;
  int64_t key_cardinality;
  double rate_per_type;
  uint64_t slack_ms;
};

constexpr SelectiveScenario kSelectiveScenarios[] = {
    {"seq_mod16_selective",
     "SEQ(A a, B b) WHERE a.a0 % 16 == 0 AND b.a0 % 16 == 0", 50, 64, 400.0,
     50},
    {"seq_mod8_keyed_selective",
     "SEQ(A a, B b, D d) WHERE a.a0 % 8 == 0 AND b.a0 % 8 == 0 AND "
     "d.a0 % 8 == 0 AND a.a1 == b.a1 AND b.a1 == d.a1",
     100, 64, 250.0, 50},
    {"nseq_mod8_selective",
     "NSEQ(A a, B b, D d) WHERE a.a0 % 8 == 0 AND d.a0 % 8 == 0", 100, 64,
     250.0, 50},
};

int RunEngineScaling(const std::string& out_path, int reps) {
  struct Point {
    std::string name;
    size_t events;
    double seconds;
    uint64_t matches;
    bool consistent;
  };
  std::vector<Point> points;
  bool all_consistent = true;
  for (const Scenario& sc : kScenarios) {
    EngineInstance inst(sc.pattern, sc.window_ms, sc.key_cardinality,
                        sc.rate_per_type);
    double best = 0;
    uint64_t matches = 0;
    bool consistent = true;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const uint64_t m = inst.RunOnce();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r == 0 || secs < best) best = secs;
      if (r == 0) matches = m;
      consistent &= (m == matches);
    }
    all_consistent &= consistent;
    points.push_back(
        Point{sc.name, inst.trace.size(), best, matches, consistent});
    std::printf("%-26s %zu events  %.3fs  %.0f events/s  matches=%llu %s\n",
                sc.name, inst.trace.size(), best,
                best > 0 ? static_cast<double>(inst.trace.size()) / best : 0.0,
                static_cast<unsigned long long>(matches),
                consistent ? "" : "DIVERGED");
  }

  // Scalar-vs-batch comparison on the selective scenarios: best-of-reps
  // for each path, and a hard determinism gate — every rep of either path
  // must produce the same match count.
  struct SelectivePoint {
    std::string name;
    size_t events;
    double scalar_seconds;
    double batch_seconds;
    uint64_t matches;
    bool consistent;
  };
  std::vector<SelectivePoint> selective;
  for (const SelectiveScenario& sc : kSelectiveScenarios) {
    EngineInstance inst(sc.pattern, sc.window_ms, sc.key_cardinality,
                        sc.rate_per_type, sc.slack_ms);
    double scalar_best = 0, batch_best = 0;
    uint64_t matches = 0;
    bool consistent = true;
    for (int r = 0; r < reps; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      const uint64_t scalar_m = inst.RunOnce();
      const double scalar_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      t0 = std::chrono::steady_clock::now();
      const uint64_t batch_m = inst.RunOnceBatched(sc.slack_ms);
      const double batch_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r == 0 || scalar_secs < scalar_best) scalar_best = scalar_secs;
      if (r == 0 || batch_secs < batch_best) batch_best = batch_secs;
      if (r == 0) matches = scalar_m;
      consistent &= (scalar_m == matches) && (batch_m == matches);
    }
    all_consistent &= consistent;
    selective.push_back(SelectivePoint{sc.name, inst.trace.size(), scalar_best,
                                       batch_best, matches, consistent});
    std::printf(
        "%-26s %zu events  scalar %.3fs  batch %.3fs  speedup %.2fx  "
        "matches=%llu %s\n",
        sc.name, inst.trace.size(), scalar_best, batch_best,
        batch_best > 0 ? scalar_best / batch_best : 0.0,
        static_cast<unsigned long long>(matches),
        consistent ? "" : "DIVERGED");
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"engine_scaling\",\n";
  json << "  \"config\": {\"num_nodes\": 4, \"duration_ms\": 20000, "
       << "\"seed\": 5},\n";
  json << "  \"reps\": " << reps << ",\n";
  json << "  \"matches_consistent\": " << (all_consistent ? "true" : "false")
       << ",\n";
  json << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Scenario& sc = kScenarios[i];
    json << "    {\"name\": \"" << p.name << "\", \"window_ms\": "
         << sc.window_ms << ", \"keys\": " << sc.key_cardinality
         << ", \"rate_per_type\": " << sc.rate_per_type
         << ", \"events\": " << p.events
         << ", \"seconds\": " << p.seconds << ", \"events_per_s\": "
         << (p.seconds > 0 ? static_cast<double>(p.events) / p.seconds : 0.0)
         << ", \"matches\": " << p.matches << ", \"matches_consistent\": "
         << (p.consistent ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"selective_results\": [\n";
  for (size_t i = 0; i < selective.size(); ++i) {
    const SelectivePoint& p = selective[i];
    const SelectiveScenario& sc = kSelectiveScenarios[i];
    json << "    {\"name\": \"" << p.name << "\", \"window_ms\": "
         << sc.window_ms << ", \"keys\": " << sc.key_cardinality
         << ", \"rate_per_type\": " << sc.rate_per_type
         << ", \"slack_ms\": " << sc.slack_ms << ", \"events\": " << p.events
         << ", \"scalar_seconds\": " << p.scalar_seconds
         << ", \"batch_seconds\": " << p.batch_seconds << ", \"speedup\": "
         << (p.batch_seconds > 0 ? p.scalar_seconds / p.batch_seconds : 0.0)
         << ", \"matches\": " << p.matches << ", \"matches_consistent\": "
         << (p.consistent ? "true" : "false") << "}"
         << (i + 1 < selective.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (out_path == "-") {
    std::printf("%s", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_consistent ? 0 : 1;
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  bool scaling = false;
  int reps = 3;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (scaling) return muse::bench::RunEngineScaling(out_path, reps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
