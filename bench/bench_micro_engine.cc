// Google-benchmark microbenchmarks of the CEP engine: event throughput of
// centralized evaluation for SEQ/AND patterns, with and without equality
// join keys, measured in events/second.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/cep/engine.h"
#include "src/cep/parser.h"
#include "src/net/trace.h"

namespace muse::bench {
namespace {

struct EngineInstance {
  TypeRegistry reg;
  Query query;
  std::vector<Event> trace;

  EngineInstance(const std::string& pattern, uint64_t window_ms,
                 int64_t key_cardinality) {
    Query q = ParseQuery(pattern, &reg).value();
    q.set_window(window_ms);
    query = q;
    Network net(4, reg.size());
    for (NodeId n = 0; n < 4; ++n) {
      for (int t = 0; t < reg.size(); ++t) {
        net.AddProducer(n, static_cast<EventTypeId>(t));
      }
    }
    for (int t = 0; t < reg.size(); ++t) {
      net.SetRate(static_cast<EventTypeId>(t), 25.0);
    }
    TraceOptions topts;
    topts.duration_ms = 20'000;
    topts.attr_cardinality[0] = key_cardinality;
    Rng rng(5);
    trace = GenerateGlobalTrace(net, topts, rng);
  }
};

void RunEngine(benchmark::State& state, EngineInstance& inst) {
  uint64_t matches = 0;
  for (auto _ : state) {
    QueryEngine engine(inst.query);
    std::vector<Match> out;
    for (const Event& e : inst.trace) {
      engine.OnEvent(e, &out);
      matches += out.size();
      out.clear();
    }
    engine.Flush(&out);
    matches += out.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(inst.trace.size()));
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_SeqKeyed(benchmark::State& state) {
  EngineInstance inst(
      "SEQ(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0", 500, 1000);
  RunEngine(state, inst);
}
BENCHMARK(BM_SeqKeyed);

void BM_AndKeyed(benchmark::State& state) {
  EngineInstance inst(
      "AND(A a, B b, D d) WHERE a.a0 == b.a0 AND b.a0 == d.a0", 500, 1000);
  RunEngine(state, inst);
}
BENCHMARK(BM_AndKeyed);

void BM_SeqUnkeyedSmallWindow(benchmark::State& state) {
  EngineInstance inst("SEQ(A, B)", 100, 4);
  RunEngine(state, inst);
}
BENCHMARK(BM_SeqUnkeyedSmallWindow);

void BM_NseqKeyedWindow(benchmark::State& state) {
  EngineInstance inst("NSEQ(A, B, D)", 200, 8);
  RunEngine(state, inst);
}
BENCHMARK(BM_NseqKeyedWindow);

}  // namespace
}  // namespace muse::bench
