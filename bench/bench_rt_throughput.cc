// Wall-clock throughput and latency of the muse-rt execution runtime
// (src/rt): the first measurements in this repo taken on real threads
// instead of the virtual clock of the discrete-event simulator.
//
// `--scaling` (the primary mode) runs a fixed random workload under the
// aMuSE multi-sink plan and the single-sink centralized plan at worker
// thread counts {1, 2, hardware}, injecting the trace unpaced (the source
// pushes as fast as credit-based backpressure admits) and writes
// BENCH_rt.json (`--out <path>` overrides, "-" = stdout) with sustained
// events/sec and wall-clock detection latency p50/p99 per point. Each
// point is best-of-`--reps` for throughput; the latency quantiles come
// from that best rep's merged per-query HDR histograms.
//
// Without --scaling it prints the same table for a single quick pass
// (reps=1) and writes no file.
//
// `--trace-sample <N>` additionally reruns the aMuSE plan at the highest
// thread count with 1-in-N sampled causal tracing enabled and records the
// events/s cost versus the untraced point as "trace_overhead" in the JSON.
//
// `--processes <csv>` (e.g. `--processes 1,2,4`) switches to the muse-net
// multi-process suite: the aMuSE plan runs once in-process as the
// baseline, then once per requested count as a real muse_node cluster
// (spec text and plan JSON round-tripped exactly as daemons receive
// them, frames over loopback TCP), and writes BENCH_rt_net.json. Every
// point must report the identical match count — the cross-process
// determinism contract — or the bench exits non-zero.
//
// `--adapt` switches to the muse-adapt migration suite: the aMuSE plan
// runs once fixed (the baseline), then with a scripted driver that live-
// migrates the running graph to the centralized plan at 40% of the trace
// and back to aMuSE at 75%. BENCH_rt_adapt.json records the throughput
// cost of migrating twice mid-run, the quiesce-to-resume pause p50/p99
// over all reps, and the transferred replay state. Both runs must report
// the identical match count — migration must not create, lose, or
// duplicate matches — or the bench exits non-zero.
//
// Comparing the two plans is the paper's load-distribution claim (§7)
// restated in wall-clock terms: the centralized plan funnels every event
// through one evaluator node, so multiplexing its deployment over more
// worker threads cannot buy what the aMuSE plan's spread-out operator
// graph can.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/thread_pool.h"
#include "src/core/centralized.h"
#include "src/core/plan_json.h"
#include "src/net/trace.h"
#include "src/rt/cluster.h"
#include "src/rt/runtime.h"
#include "src/workload/selectivity_model.h"
#include "src/workload/spec.h"

namespace muse::bench {
namespace {

constexpr uint64_t kSeed = 808;

struct Instance {
  Network net;
  std::vector<Query> workload;
  std::vector<Event> trace;

  explicit Instance(uint64_t duration_ms) : net(1, 1) {
    Rng rng(kSeed);
    NetworkGenOptions nopts;
    nopts.num_nodes = 8;
    nopts.num_types = 6;
    nopts.max_rate = 10;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(nopts.num_types, 0.05, 0.3, rng);
    QueryGenOptions qopts;
    qopts.num_queries = 3;
    qopts.avg_primitives = 4;
    qopts.num_types = nopts.num_types;
    workload = GenerateWorkload(qopts, model, rng);
    TraceOptions topts;
    topts.duration_ms = duration_ms;
    trace = GenerateGlobalTrace(net, topts, rng);
  }
};

struct Point {
  std::string plan;
  int threads;
  double events_per_sec = 0;
  double wall_seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t matches = 0;
  uint64_t net_frames = 0;
  uint64_t net_bytes = 0;
  uint64_t stalls = 0;
};

/// Merges every per-query rt_latency_ms histogram of the run and reads the
/// wall-clock quantiles off the merged distribution.
void LatencyQuantiles(const rt::RtReport& report, Point* p) {
  obs::Histogram merged(1e-3);
  for (const obs::MetricsRegistry::Entry& e :
       report.telemetry->registry.Entries()) {
    if (e.name == "rt_latency_ms" && e.histogram != nullptr) {
      merged.MergeFrom(*e.histogram);
    }
  }
  if (merged.Count() == 0) return;
  p->p50_ms = merged.Quantile(0.50);
  p->p99_ms = merged.Quantile(0.99);
}

uint64_t MatchCount(const rt::RtReport& report) {
  uint64_t total = 0;
  for (const obs::MetricsRegistry::Entry& e :
       report.telemetry->registry.Entries()) {
    if (e.name == "rt_matches_total" &&
        e.kind == obs::MetricKind::kCounter) {
      total += e.counter->Value();
    }
  }
  return total;
}

Point RunPoint(const Deployment& dep, const Instance& inst,
               const std::string& plan_name, int threads, int reps,
               uint64_t trace_sample_every = 0) {
  Point p;
  p.plan = plan_name;
  p.threads = threads;
  for (int r = 0; r < reps; ++r) {
    rt::RtOptions opts;
    opts.num_threads = threads;
    opts.collect_matches = false;  // saturation mode; counts stay in metrics
    opts.source_seed = kSeed + static_cast<uint64_t>(r);
    opts.trace_sample_every = trace_sample_every;
    rt::RtRuntime runtime(dep, opts);
    rt::RtReport report = runtime.Run(inst.trace);
    if (r == 0 || report.events_per_sec > p.events_per_sec) {
      p.events_per_sec = report.events_per_sec;
      p.wall_seconds = report.wall_seconds;
      p.matches = MatchCount(report);
      p.net_frames = report.network_frames;
      p.stalls = report.backpressure_stalls;
      LatencyQuantiles(report, &p);
    }
  }
  return p;
}

int RunThroughput(const std::string& out_path, int reps,
                  uint64_t duration_ms, bool write_json,
                  uint64_t trace_sample_every) {
  Instance inst(duration_ms);
  WorkloadCatalogs catalogs(inst.workload, inst.net);

  struct PlanCase {
    std::string name;
    MuseGraph graph;
  };
  std::vector<PlanCase> plans;
  plans.push_back({"amuse", PlanWorkloadAmuse(catalogs,
                                              BenchPlannerOptions(false))
                                .combined});
  plans.push_back({"centralized",
                   BuildCentralizedPlan(catalogs.Pointers(), 0)});

  std::set<int> counts{1, 2};
  counts.insert(std::max(1, ThreadPool::HardwareExecutors()));

  PrintTitle("muse-rt throughput (trace: " +
             std::to_string(inst.trace.size()) + " events, " +
             std::to_string(duration_ms) + " virtual ms, reps=" +
             std::to_string(reps) + ")");
  PrintHeader({"plan", "threads", "events/s", "wall_s", "p50_ms", "p99_ms",
               "matches", "net_frames", "stalls"});

  std::vector<Point> points;
  uint64_t baseline_matches = 0;
  bool matches_consistent = true;
  for (const PlanCase& pc : plans) {
    Deployment dep(pc.graph, catalogs.Pointers());
    for (int threads : counts) {
      Point p = RunPoint(dep, inst, pc.name, threads, reps);
      // Every (plan, threads) point must detect the same complete match
      // set — the runtime's determinism contract makes the bench a
      // correctness check for free.
      if (points.empty()) baseline_matches = p.matches;
      matches_consistent &= p.matches == baseline_matches;
      points.push_back(p);
      PrintRow({p.plan, std::to_string(p.threads), Fmt(p.events_per_sec),
                Fmt(p.wall_seconds), Fmt(p.p50_ms), Fmt(p.p99_ms),
                std::to_string(p.matches), std::to_string(p.net_frames),
                std::to_string(p.stalls)});
    }
  }
  if (!matches_consistent) {
    std::fprintf(stderr,
                 "error: match counts diverged across points — the runtime "
                 "broke its determinism contract\n");
  }

  // --trace-sample: rerun the aMuSE plan at the highest thread count with
  // sampled causal tracing on and report the events/s cost against the
  // untraced point measured above. The acceptance bar is <5% at 1/1024.
  double trace_overhead_pct = 0;
  double trace_base_eps = 0;
  Point traced;
  bool have_traced = false;
  if (trace_sample_every > 0) {
    int max_threads = *counts.rbegin();
    Deployment dep(plans.front().graph, catalogs.Pointers());
    traced = RunPoint(dep, inst, "amuse+trace", max_threads, reps,
                      trace_sample_every);
    have_traced = true;
    for (const Point& p : points) {
      if (p.plan == "amuse" && p.threads == max_threads) {
        trace_base_eps = p.events_per_sec;
      }
    }
    if (trace_base_eps > 0) {
      trace_overhead_pct =
          (trace_base_eps - traced.events_per_sec) / trace_base_eps * 100.0;
    }
    matches_consistent &= traced.matches == baseline_matches;
    PrintRow({traced.plan, std::to_string(traced.threads),
              Fmt(traced.events_per_sec), Fmt(traced.wall_seconds),
              Fmt(traced.p50_ms), Fmt(traced.p99_ms),
              std::to_string(traced.matches),
              std::to_string(traced.net_frames),
              std::to_string(traced.stalls)});
    std::printf("trace overhead at 1/%llu sampling: %.2f%%\n",
                static_cast<unsigned long long>(trace_sample_every),
                trace_overhead_pct);
  }
  if (!write_json) return matches_consistent ? 0 : 1;

  std::ostringstream json;
  json << "{\n  \"bench\": \"rt_throughput\",\n";
  json << "  \"config\": {\"num_nodes\": 8, \"num_types\": 6, "
       << "\"num_queries\": 3, \"avg_primitives\": 4, \"seed\": " << kSeed
       << ", \"duration_ms\": " << duration_ms << ", \"trace_events\": "
       << inst.trace.size() << "},\n";
  json << "  \"hardware_executors\": " << ThreadPool::HardwareExecutors()
       << ",\n";
  json << "  \"reps\": " << reps << ",\n";
  json << "  \"matches_consistent\": "
       << (matches_consistent ? "true" : "false") << ",\n";
  json << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"plan\": \"" << p.plan << "\", \"threads\": " << p.threads
         << ", \"events_per_sec\": " << p.events_per_sec
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"matches\": " << p.matches
         << ", \"net_frames\": " << p.net_frames
         << ", \"backpressure_stalls\": " << p.stalls << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (have_traced) {
    json << ",\n  \"trace_overhead\": {\"sample_every\": "
         << trace_sample_every
         << ", \"threads\": " << traced.threads
         << ", \"baseline_events_per_sec\": " << trace_base_eps
         << ", \"traced_events_per_sec\": " << traced.events_per_sec
         << ", \"overhead_pct\": " << trace_overhead_pct << "}";
  }
  json << "\n}\n";

  if (out_path == "-") {
    std::printf("%s", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return matches_consistent ? 0 : 1;
}

/// Scripted adapt driver for the --adapt suite: requests a migration to a
/// fixed target deployment once the trace clock passes each scheduled
/// time. Unlike adapt::AdaptController there is no wall-clock replan
/// thread, so the flip fires deterministically even in unpaced runs.
class FlipDriver : public rt::AdaptDriver {
 public:
  explicit FlipDriver(
      std::vector<std::pair<uint64_t, const Deployment*>> schedule)
      : schedule_(std::move(schedule)) {}

  const Deployment* OnDriftReport(const obs::RateDriftDetector::Report&,
                                  uint64_t trace_now_ms) override {
    if (next_ < schedule_.size() && trace_now_ms >= schedule_[next_].first) {
      return schedule_[next_].second;
    }
    return nullptr;
  }

  void OnMigrated(uint64_t pause_us, bool ok) override {
    ++next_;
    if (ok) {
      pauses_.push_back(pause_us);
    } else {
      ++rejected_;
    }
  }

  uint64_t Replans() const override { return next_; }
  const std::vector<uint64_t>& pauses() const { return pauses_; }
  uint64_t rejected() const { return rejected_; }

 private:
  std::vector<std::pair<uint64_t, const Deployment*>> schedule_;
  size_t next_ = 0;
  std::vector<uint64_t> pauses_;
  uint64_t rejected_ = 0;
};

/// Nearest-rank quantile of the pooled pause samples.
double PauseQuantile(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
  return static_cast<double>(samples[std::min(idx, samples.size() - 1)]);
}

int RunAdaptBench(const std::string& out_path, int reps,
                  uint64_t duration_ms) {
  Instance inst(duration_ms);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  const MuseGraph amuse_graph =
      PlanWorkloadAmuse(catalogs, BenchPlannerOptions(false)).combined;
  const MuseGraph central_graph =
      BuildCentralizedPlan(catalogs.Pointers(), 0);
  Deployment amuse_dep(amuse_graph, catalogs.Pointers());
  Deployment central_dep(central_graph, catalogs.Pointers());

  const int threads = std::max(1, ThreadPool::HardwareExecutors());
  const uint64_t flip_out_ms = duration_ms * 2 / 5;
  const uint64_t flip_back_ms = duration_ms * 3 / 4;

  PrintTitle("muse-adapt live-migration cost (trace: " +
             std::to_string(inst.trace.size()) + " events, " +
             std::to_string(duration_ms) + " virtual ms, " +
             std::to_string(threads) + " threads, reps=" +
             std::to_string(reps) + ")");
  PrintHeader({"mode", "events/s", "wall_s", "matches", "migrations",
               "pause_p50_us", "pause_p99_us"});

  Point baseline;
  baseline.plan = "fixed-amuse";
  Point adapt;
  adapt.plan = "amuse->central->amuse";
  std::vector<uint64_t> pauses;
  uint64_t state_events = 0;
  uint64_t state_bytes = 0;
  uint64_t aborts = 0;
  bool matches_consistent = true;

  for (int r = 0; r < reps; ++r) {
    rt::RtOptions opts;
    opts.num_threads = threads;
    opts.collect_matches = false;
    opts.source_seed = kSeed + static_cast<uint64_t>(r);
    rt::RtRuntime runtime(amuse_dep, opts);
    rt::RtReport report = runtime.Run(inst.trace);
    if (r == 0 || report.events_per_sec > baseline.events_per_sec) {
      baseline.events_per_sec = report.events_per_sec;
      baseline.wall_seconds = report.wall_seconds;
      baseline.matches = MatchCount(report);
    }
  }

  for (int r = 0; r < reps; ++r) {
    FlipDriver driver({{flip_out_ms, &central_dep},
                       {flip_back_ms, &amuse_dep}});
    rt::RtOptions opts;
    opts.num_threads = threads;
    opts.collect_matches = false;
    opts.source_seed = kSeed + static_cast<uint64_t>(r);
    opts.adapt = &driver;
    opts.min_nodes = inst.net.num_nodes();
    rt::RtRuntime runtime(amuse_dep, opts);
    rt::RtReport report = runtime.Run(inst.trace);
    if (report.wedged) {
      std::fprintf(stderr, "error: adapt run wedged (rep %d)\n", r);
      return 1;
    }
    if (report.migrations != 2 || driver.rejected() != 0) {
      std::fprintf(stderr,
                   "error: adapt rep %d executed %llu migrations "
                   "(%llu rejected), expected 2 clean flips\n",
                   r, static_cast<unsigned long long>(report.migrations),
                   static_cast<unsigned long long>(driver.rejected()));
      return 1;
    }
    pauses.insert(pauses.end(), driver.pauses().begin(),
                  driver.pauses().end());
    aborts += report.migration_aborts;
    const uint64_t m = MatchCount(report);
    matches_consistent &= m == baseline.matches;
    if (r == 0 || report.events_per_sec > adapt.events_per_sec) {
      adapt.events_per_sec = report.events_per_sec;
      adapt.wall_seconds = report.wall_seconds;
      adapt.matches = m;
      state_events = report.migration_state_events;
      state_bytes = report.migration_state_bytes;
    }
  }

  const double pause_p50 = PauseQuantile(pauses, 0.50);
  const double pause_p99 = PauseQuantile(pauses, 0.99);
  const double overhead_pct =
      baseline.events_per_sec > 0
          ? (baseline.events_per_sec - adapt.events_per_sec) /
                baseline.events_per_sec * 100.0
          : 0;

  PrintRow({baseline.plan, Fmt(baseline.events_per_sec),
            Fmt(baseline.wall_seconds), std::to_string(baseline.matches),
            "0", "-", "-"});
  PrintRow({adapt.plan, Fmt(adapt.events_per_sec), Fmt(adapt.wall_seconds),
            std::to_string(adapt.matches), "2", Fmt(pause_p50),
            Fmt(pause_p99)});
  std::printf("adapt overhead (2 migrations): %.2f%%, state moved: "
              "%llu events / %llu bytes\n",
              overhead_pct, static_cast<unsigned long long>(state_events),
              static_cast<unsigned long long>(state_bytes));
  if (!matches_consistent) {
    std::fprintf(stderr,
                 "error: match counts diverged between the fixed and the "
                 "migrating run — migration broke the determinism "
                 "contract\n");
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"rt_adapt\",\n";
  json << "  \"config\": {\"num_nodes\": 8, \"num_types\": 6, "
       << "\"num_queries\": 3, \"avg_primitives\": 4, \"seed\": " << kSeed
       << ", \"duration_ms\": " << duration_ms << ", \"trace_events\": "
       << inst.trace.size() << ", \"flip_out_ms\": " << flip_out_ms
       << ", \"flip_back_ms\": " << flip_back_ms << "},\n";
  json << "  \"threads\": " << threads << ",\n";
  json << "  \"reps\": " << reps << ",\n";
  json << "  \"matches_consistent\": "
       << (matches_consistent ? "true" : "false") << ",\n";
  json << "  \"baseline\": {\"plan\": \"" << baseline.plan
       << "\", \"events_per_sec\": " << baseline.events_per_sec
       << ", \"wall_seconds\": " << baseline.wall_seconds
       << ", \"matches\": " << baseline.matches << "},\n";
  json << "  \"adapt\": {\"plan\": \"" << adapt.plan
       << "\", \"events_per_sec\": " << adapt.events_per_sec
       << ", \"wall_seconds\": " << adapt.wall_seconds
       << ", \"matches\": " << adapt.matches
       << ", \"migrations_per_run\": 2, \"migration_aborts\": " << aborts
       << ", \"migration_state_events\": " << state_events
       << ", \"migration_state_bytes\": " << state_bytes << "},\n";
  json << "  \"migration_pause_us\": {\"samples\": " << pauses.size()
       << ", \"p50\": " << pause_p50 << ", \"p99\": " << pause_p99
       << ", \"max\": " << PauseQuantile(pauses, 1.0) << "},\n";
  json << "  \"adapt_overhead_pct\": " << overhead_pct << "\n}\n";

  if (out_path == "-") {
    std::printf("%s", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return matches_consistent ? 0 : 1;
}

/// The same fixed workload as RunThroughput, but round-tripped through
/// the deployment-spec text and plan JSON a cluster actually ships, so
/// the Deployment measured here is compiled from the bytes every
/// muse_node daemon parses. The trace is generated from the *parsed*
/// network for the same reason.
struct NetInstance {
  DeploymentSpec spec;
  std::string spec_text;
  std::string plan_json;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  std::unique_ptr<Deployment> dep;

  explicit NetInstance(uint64_t duration_ms) {
    Rng rng(kSeed);
    NetworkGenOptions nopts;
    nopts.num_nodes = 8;
    nopts.num_types = 6;
    nopts.max_rate = 10;
    SelectivityModel model(nopts.num_types, 0.05, 0.3, rng);
    QueryGenOptions qopts;
    qopts.num_queries = 3;
    qopts.avg_primitives = 4;
    qopts.num_types = nopts.num_types;

    DeploymentSpec generated;
    generated.network = MakeRandomNetwork(nopts, rng);
    generated.workload = GenerateWorkload(qopts, model, rng);
    for (int t = 0; t < nopts.num_types; ++t) {
      generated.registry.Intern("T" + std::to_string(t));
    }
    spec_text = WriteDeploymentSpec(generated);
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fatal: spec round-trip failed: %s\n",
                   parsed.error().message.c_str());
      std::abort();
    }
    spec = std::move(parsed).value();

    TraceOptions topts;
    topts.duration_ms = duration_ms;
    trace = GenerateGlobalTrace(spec.network, topts, rng);

    catalogs = std::make_unique<WorkloadCatalogs>(spec.workload, spec.network);
    MuseGraph plan =
        PlanWorkloadAmuse(*catalogs, BenchPlannerOptions(false)).combined;
    plan_json = PlanToJson(plan);
    dep = std::make_unique<Deployment>(plan, catalogs->Pointers());
  }
};

Point RunNetPoint(const NetInstance& inst, const std::string& label,
                  int processes, int threads, int reps,
                  const std::string& muse_node_bin) {
  Point p;
  p.plan = label;
  p.threads = threads;
  for (int r = 0; r < reps; ++r) {
    rt::RtOptions opts;
    opts.num_threads = threads;
    opts.collect_matches = false;
    opts.source_seed = kSeed + static_cast<uint64_t>(r);
    if (processes > 0) {
      opts.transport_kind = rt::RtTransportKind::kCluster;
      opts.processes = processes;
      opts.muse_node_bin = muse_node_bin;
      opts.cluster_spec_text = inst.spec_text;
      opts.cluster_plan_json = inst.plan_json;
      opts.transport.wedge_timeout_ms = 60000;
    }
    rt::RtRuntime runtime(*inst.dep, opts);
    rt::RtReport report = runtime.Run(inst.trace);
    if (report.wedged) {
      std::fprintf(stderr, "error: %s wedged (rep %d)\n", label.c_str(), r);
      continue;
    }
    if (r == 0 || report.events_per_sec > p.events_per_sec) {
      p.events_per_sec = report.events_per_sec;
      p.wall_seconds = report.wall_seconds;
      p.matches = MatchCount(report);
      p.net_frames = report.network_frames;
      p.net_bytes = report.network_bytes;
      p.stalls = report.backpressure_stalls;
      LatencyQuantiles(report, &p);
    }
  }
  return p;
}

int RunNetThroughput(const std::string& out_path, int reps,
                     uint64_t duration_ms,
                     const std::vector<int>& process_counts) {
  const std::string muse_node_bin = rt::FindMuseNodeBinary("");
  if (muse_node_bin.empty()) {
    std::fprintf(stderr,
                 "error: muse_node binary not found (looked next to this "
                 "binary, ../tools, $MUSE_NODE_BIN)\n");
    return 1;
  }
  NetInstance inst(duration_ms);
  const int threads = 2;

  PrintTitle("muse-net multi-process throughput (trace: " +
             std::to_string(inst.trace.size()) + " events, " +
             std::to_string(duration_ms) + " virtual ms, " +
             std::to_string(threads) + " threads/process, reps=" +
             std::to_string(reps) + ")");
  PrintHeader({"mode", "threads", "events/s", "wall_s", "p50_ms", "p99_ms",
               "matches", "net_frames", "stalls"});

  std::vector<Point> points;
  std::vector<int> procs_of_point;
  uint64_t baseline_matches = 0;
  bool matches_consistent = true;
  auto take = [&](Point p, int processes) {
    if (points.empty()) baseline_matches = p.matches;
    matches_consistent &= p.matches == baseline_matches;
    points.push_back(p);
    procs_of_point.push_back(processes);
    PrintRow({p.plan, std::to_string(p.threads), Fmt(p.events_per_sec),
              Fmt(p.wall_seconds), Fmt(p.p50_ms), Fmt(p.p99_ms),
              std::to_string(p.matches), std::to_string(p.net_frames),
              std::to_string(p.stalls)});
  };
  take(RunNetPoint(inst, "inproc", 0, threads, reps, muse_node_bin), 0);
  for (int n : process_counts) {
    take(RunNetPoint(inst, "cluster-p" + std::to_string(n), n, threads, reps,
                     muse_node_bin),
         n);
  }
  if (!matches_consistent) {
    std::fprintf(stderr,
                 "error: match counts diverged across process counts — the "
                 "cross-process determinism contract is broken\n");
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"rt_net_throughput\",\n";
  json << "  \"config\": {\"num_nodes\": 8, \"num_types\": 6, "
       << "\"num_queries\": 3, \"avg_primitives\": 4, \"seed\": " << kSeed
       << ", \"duration_ms\": " << duration_ms << ", \"trace_events\": "
       << inst.trace.size() << ", \"threads_per_process\": " << threads
       << "},\n";
  json << "  \"reps\": " << reps << ",\n";
  json << "  \"matches_consistent\": "
       << (matches_consistent ? "true" : "false") << ",\n";
  json << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"mode\": \"" << p.plan
         << "\", \"processes\": " << procs_of_point[i]
         << ", \"threads\": " << p.threads
         << ", \"events_per_sec\": " << p.events_per_sec
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"matches\": " << p.matches
         << ", \"net_frames\": " << p.net_frames
         << ", \"net_bytes\": " << p.net_bytes
         << ", \"backpressure_stalls\": " << p.stalls << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (out_path == "-") {
    std::printf("%s", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return matches_consistent ? 0 : 1;
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  bool scaling = false;
  bool adapt = false;
  int reps = 3;
  uint64_t duration_ms = 8000;
  uint64_t trace_sample_every = 0;
  std::string out_path;
  std::vector<int> process_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--adapt") == 0) {
      adapt = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
      trace_sample_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--processes") == 0 && i + 1 < argc) {
      for (const char* s = argv[++i]; *s != '\0';) {
        char* end = nullptr;
        const long n = std::strtol(s, &end, 10);
        if (end == s || n < 1 || (*end != '\0' && *end != ',')) {
          std::fprintf(stderr,
                       "error: --processes wants a comma list of counts "
                       ">= 1, got '%s'\n", argv[i]);
          return 2;
        }
        process_counts.push_back(static_cast<int>(n));
        s = *end == ',' ? end + 1 : end;
      }
    }
  }
  if (!process_counts.empty()) {
    if (out_path.empty()) out_path = "BENCH_rt_net.json";
    return muse::bench::RunNetThroughput(out_path, reps, duration_ms,
                                         process_counts);
  }
  if (adapt) {
    if (out_path.empty()) out_path = "BENCH_rt_adapt.json";
    return muse::bench::RunAdaptBench(out_path, reps, duration_ms);
  }
  if (out_path.empty()) out_path = "BENCH_rt.json";
  if (!scaling) reps = 1;
  return muse::bench::RunThroughput(out_path, reps, duration_ms, scaling,
                                    trace_sample_every);
}
