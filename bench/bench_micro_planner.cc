// Google-benchmark microbenchmarks of the planner building blocks:
// catalog construction (projection enumeration), combination enumeration,
// and full aMuSE / aMuSE* / oOP planning on the default configuration.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/combination.h"
#include "src/core/placement_oop.h"

namespace muse::bench {
namespace {

struct Instance {
  Network net;
  std::vector<Query> workload;

  explicit Instance(int avg_primitives = 6) : net(1, 1) {
    Rng rng(1234);
    NetworkGenOptions nopts;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(nopts.num_types, 0.01, 0.2, rng);
    QueryGenOptions qopts;
    qopts.avg_primitives = avg_primitives;
    qopts.num_queries = 1;
    workload = GenerateWorkload(qopts, model, rng);
  }
};

void BM_CatalogConstruction(benchmark::State& state) {
  Instance inst(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ProjectionCatalog cat(inst.workload[0], inst.net);
    benchmark::DoNotOptimize(cat.All().size());
  }
}
BENCHMARK(BM_CatalogConstruction)->Arg(4)->Arg(6)->Arg(8);

void BM_CombinationEnumeration(benchmark::State& state) {
  TypeSet target = TypeSet::FirstN(static_cast<int>(state.range(0)));
  std::vector<TypeSet> candidates;
  ForEachNonEmptySubset(target, [&](TypeSet s) {
    if (s != target) candidates.push_back(s);
  });
  for (auto _ : state) {
    auto combos = EnumerateCombinations(target, candidates);
    benchmark::DoNotOptimize(combos.size());
  }
}
BENCHMARK(BM_CombinationEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_PlanAmuse(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    PlanResult r = PlanQuery(cat, BenchPlannerOptions(false));
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlanAmuse);

void BM_PlanAmuseStar(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    PlanResult r = PlanQuery(cat, BenchPlannerOptions(true));
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlanAmuseStar);

void BM_PlanOop(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    OopPlan p = PlanOperatorPlacement(cat);
    benchmark::DoNotOptimize(p.cost);
  }
}
BENCHMARK(BM_PlanOop);

}  // namespace
}  // namespace muse::bench
