// Google-benchmark microbenchmarks of the planner building blocks:
// catalog construction (projection enumeration), combination enumeration,
// and full aMuSE / aMuSE* / oOP planning on the default configuration.
//
// `--scaling` switches to the muse-par thread-scaling mode instead: it
// plans the Fig. 7 workload-size configuration (10 queries, seed 703) at
// num_threads ∈ {1, 2, 4, 8} (plus the `--threads` value, if any), checks
// the plan JSON is byte-identical across thread counts, and writes the
// measurements to BENCH_planner.json (`--out <path>` overrides, "-" =
// stdout) — the first datapoint of the bench trajectory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/common/thread_pool.h"
#include "src/core/combination.h"
#include "src/core/placement_oop.h"
#include "src/core/plan_json.h"

namespace muse::bench {
namespace {

struct Instance {
  Network net;
  std::vector<Query> workload;

  explicit Instance(int avg_primitives = 6) : net(1, 1) {
    Rng rng(1234);
    NetworkGenOptions nopts;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(nopts.num_types, 0.01, 0.2, rng);
    QueryGenOptions qopts;
    qopts.avg_primitives = avg_primitives;
    qopts.num_queries = 1;
    workload = GenerateWorkload(qopts, model, rng);
  }
};

void BM_CatalogConstruction(benchmark::State& state) {
  Instance inst(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ProjectionCatalog cat(inst.workload[0], inst.net);
    benchmark::DoNotOptimize(cat.All().size());
  }
}
BENCHMARK(BM_CatalogConstruction)->Arg(4)->Arg(6)->Arg(8);

void BM_CombinationEnumeration(benchmark::State& state) {
  TypeSet target = TypeSet::FirstN(static_cast<int>(state.range(0)));
  std::vector<TypeSet> candidates;
  ForEachNonEmptySubset(target, [&](TypeSet s) {
    if (s != target) candidates.push_back(s);
  });
  for (auto _ : state) {
    auto combos = EnumerateCombinations(target, candidates);
    benchmark::DoNotOptimize(combos.size());
  }
}
BENCHMARK(BM_CombinationEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_PlanAmuse(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    PlanResult r = PlanQuery(cat, BenchPlannerOptions(false));
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlanAmuse);

void BM_PlanAmuseStar(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    PlanResult r = PlanQuery(cat, BenchPlannerOptions(true));
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlanAmuseStar);

void BM_PlanOop(benchmark::State& state) {
  Instance inst;
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (auto _ : state) {
    OopPlan p = PlanOperatorPlacement(cat);
    benchmark::DoNotOptimize(p.cost);
  }
}
BENCHMARK(BM_PlanOop);

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

int RunPlannerScaling(const std::string& out_path, int reps) {
  // The Fig. 7 workload-size configuration at its 10-query point, seed 703
  // (matching bench_fig7_workload_size's sweep). Instance generation and
  // catalog construction run once, outside the timed region.
  SweepConfig cfg;
  cfg.num_queries = 10;
  Rng rng(703);
  NetworkGenOptions nopts;
  nopts.num_nodes = cfg.num_nodes;
  nopts.num_types = cfg.num_types;
  nopts.event_node_ratio = cfg.event_node_ratio;
  nopts.rate_skew = cfg.rate_skew;
  Network net = MakeRandomNetwork(nopts, rng);
  SelectivityModel model(cfg.num_types, cfg.min_selectivity,
                         cfg.max_selectivity, rng);
  QueryGenOptions qopts;
  qopts.num_queries = cfg.num_queries;
  qopts.avg_primitives = cfg.avg_primitives;
  qopts.num_types = cfg.num_types;
  std::vector<Query> workload = GenerateWorkload(qopts, model, rng);
  WorkloadCatalogs catalogs(workload, net);

  std::set<int> counts{1, 2, 4, 8};
  if (BenchThreads() > 0) counts.insert(BenchThreads());

  struct Point {
    int threads;
    double seconds;
    double cost;
    bool identical;
  };
  std::vector<Point> points;
  std::string baseline_json;
  bool all_identical = true;
  for (int threads : counts) {
    PlannerOptions opts = BenchPlannerOptions(false);
    opts.refine_passes = 0;
    opts.num_threads = threads;
    double best = 0;
    double cost = 0;
    std::string plan_json;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      WorkloadPlan wp = PlanWorkloadAmuse(catalogs, opts);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r == 0 || secs < best) best = secs;
      cost = wp.total_cost;
      plan_json = PlanToJson(wp.combined);
    }
    if (threads == 1) baseline_json = plan_json;
    const bool identical = plan_json == baseline_json;
    all_identical &= identical;
    points.push_back(Point{threads, best, cost, identical});
    std::printf("threads=%d  %.3fs  cost=%.3f  plan %s\n", threads, best,
                cost, identical ? "identical" : "DIVERGED");
  }

  const double baseline = points.front().seconds;
  std::ostringstream json;
  json << "{\n  \"bench\": \"planner_scaling\",\n";
  json << "  \"config\": {\"num_nodes\": " << cfg.num_nodes
       << ", \"num_types\": " << cfg.num_types
       << ", \"num_queries\": " << cfg.num_queries
       << ", \"avg_primitives\": " << cfg.avg_primitives
       << ", \"seed\": 703},\n";
  json << "  \"hardware_executors\": " << ThreadPool::HardwareExecutors()
       << ",\n";
  json << "  \"reps\": " << reps << ",\n";
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(Fnv1a(baseline_json)));
  json << "  \"plan_hash\": \"" << hash << "\",\n";
  json << "  \"plan_bytes\": " << baseline_json.size() << ",\n";
  json << "  \"plans_identical\": " << (all_identical ? "true" : "false")
       << ",\n";
  json << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"threads\": " << p.threads << ", \"seconds\": "
         << p.seconds << ", \"speedup\": "
         << (p.seconds > 0 ? baseline / p.seconds : 0.0) << ", \"cost\": "
         << p.cost << ", \"plan_identical\": "
         << (p.identical ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (out_path == "-") {
    std::printf("%s", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  bool scaling = false;
  int reps = 3;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (scaling) return muse::bench::RunPlannerScaling(out_path, reps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
