// Fig. 7c: transmission ratio vs workload size. Plan quality is largely
// insensitive to the number of queries; small workloads reference fewer
// types, shrinking the centralized reference and thus the improvement
// headroom (§7.2).

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void RunSweep(const char* title, const SweepConfig& base, uint64_t seed) {
  PrintTitle(title);
  PrintHeader({"num_queries", "aMuSE", "aMuSE*", "oOP"});
  for (int queries : {1, 3, 5, 10, 15}) {
    SweepConfig cfg = base;
    cfg.num_queries = queries;
    RatioPoint p = RunRatioPoint(cfg, seed);
    PrintRow({std::to_string(queries), FmtDist(p.amuse), FmtDist(p.star),
              FmtDist(p.oop)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  SweepConfig base;
  RunSweep("Fig 7c: transmission ratio vs workload size", base, 703);
  return muse::bench::FinishBench(argc, argv);
}
