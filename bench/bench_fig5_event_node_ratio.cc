// Fig. 5a/5b: transmission ratio vs event node ratio, for the default
// configuration (20 nodes / 15 types, 5 queries) and the large one
// (50 nodes / 20 types, 15 queries). Lower is better; 1.0 == centralized.

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void RunSweep(const char* title, const SweepConfig& base, uint64_t seed) {
  PrintTitle(title);
  PrintHeader({"event_node_ratio", "aMuSE", "aMuSE*", "oOP"});
  for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    SweepConfig cfg = base;
    cfg.event_node_ratio = ratio;
    RatioPoint p = RunRatioPoint(cfg, seed);
    PrintRow({Fmt(ratio), FmtDist(p.amuse), FmtDist(p.star), FmtDist(p.oop)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  SweepConfig base;
  RunSweep("Fig 5a: transmission ratio vs event node ratio (default)", base,
           501);
  RunSweep("Fig 5b: transmission ratio vs event node ratio (large)",
           base.Large(), 502);
  return muse::bench::FinishBench(argc, argv);
}
