// Fig. 8: case-study latency and throughput, MuSE graphs (MS) vs
// traditional operator placement (OP), executing the synthetic cluster
// trace in the distributed runtime. Multi-sink placements spread partial
// matches over the network, so MS shows lower latency and higher
// throughput; OP funnels everything through one node (§7.3).

#include "bench/bench_common.h"
#include "src/dist/simulator.h"
#include "src/workload/cluster_trace.h"

namespace muse::bench {
namespace {

SimReport Execute(const MuseGraph& plan, const WorkloadCatalogs& catalogs,
                  const std::vector<Event>& trace) {
  Deployment dep(plan, catalogs.Pointers());
  SimOptions opts;
  opts.collect_matches = false;
  DistributedSimulator sim(dep, opts);
  return sim.Run(trace);
}

void Run() {
  // Smaller trace than Table 3: this bench *executes* events, not just
  // plans. The shape (MS vs OP) is what matters.
  ClusterTraceOptions opts;
  opts.num_nodes = 10;
  opts.num_machines = 400;
  opts.duration_ms = 240'000;
  opts.job_rate_per_s = 6.0;
  opts.troubled_probability = 0.01;
  opts.window_ms = 120'000;

  PrintTitle("Fig 8: case study latency & throughput (MS vs OP)");
  PrintHeader({"run", "plan", "latency ms p50", "p25..p75", "throughput ev/s",
               "peak partial", "net msgs"});
  for (uint64_t seed : {801, 802, 803}) {
    Rng rng(seed);
    ClusterTrace ct = GenerateClusterTrace(opts, rng);
    std::vector<Query> workload = {ct.MakeQuery1(), ct.MakeQuery2()};
    WorkloadCatalogs catalogs(workload, ct.network);

    WorkloadPlan ms = PlanWorkloadAmuse(catalogs, BenchPlannerOptions(false));
    WorkloadPlan op = PlanWorkloadOop(catalogs);

    SimReport ms_report = Execute(ms.combined, catalogs, ct.events);
    SimReport op_report = Execute(op.combined, catalogs, ct.events);

    auto row = [&](const char* plan, const SimReport& r) {
      PrintRow({std::to_string(seed), plan, Fmt(r.latency_ms.p50),
                Fmt(r.latency_ms.p25) + ".." + Fmt(r.latency_ms.p75),
                Fmt(r.throughput_events_per_s),
                std::to_string(r.max_peak_partial_matches),
                std::to_string(r.network_messages)});
    };
    row("MS", ms_report);
    row("OP", op_report);
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  muse::bench::Run();
  return muse::bench::FinishBench(argc, argv);
}
