// Fig. 6a/6b: transmission ratio vs event rate skew. Rates are drawn from
// a Zipf distribution: exponent 1.1 yields rate differences of up to ~10^6x
// (heavy tail), exponent 2.0 yields nearly equal rates (§7.1). MuSE graphs
// exploit skew, so low exponents show the largest improvements.

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void RunSweep(const char* title, const SweepConfig& base, uint64_t seed) {
  PrintTitle(title);
  PrintHeader({"event_skew", "aMuSE", "aMuSE*", "oOP"});
  for (double skew : {1.1, 1.3, 1.5, 1.7, 2.0}) {
    SweepConfig cfg = base;
    cfg.rate_skew = skew;
    RatioPoint p = RunRatioPoint(cfg, seed);
    PrintRow({Fmt(skew), FmtDist(p.amuse), FmtDist(p.star), FmtDist(p.oop)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  SweepConfig base;
  RunSweep("Fig 6a: transmission ratio vs event skew (default)", base, 601);
  RunSweep("Fig 6b: transmission ratio vs event skew (large)", base.Large(),
           602);
  return muse::bench::FinishBench(argc, argv);
}
