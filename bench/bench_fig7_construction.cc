// Fig. 7d: efficiency of MuSE graph construction — wall-clock planning time
// and number of projections considered, aMuSE vs aMuSE*, across the
// experiment configurations of Figs. 5-7. aMuSE* explores fewer projections
// and placements and is correspondingly faster (§7.2).

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

void Point(const char* label, const SweepConfig& cfg, uint64_t seed) {
  RatioPoint p = RunRatioPoint(cfg, seed);
  PrintRow({label, Fmt(p.amuse_seconds), Fmt(p.star_seconds),
            Fmt(p.amuse_projections), Fmt(p.star_projections)});
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  using namespace muse::bench;
  InitBench(argc, argv);
  PrintTitle("Fig 7d: construction time (s) and projections considered");
  PrintHeader({"config", "aMuSE time", "aMuSE* time", "aMuSE #proj",
               "aMuSE* #proj"});

  SweepConfig base;
  Point("default", base, 751);

  SweepConfig ratio02 = base;
  ratio02.event_node_ratio = 0.2;
  Point("ratio=0.2", ratio02, 752);

  SweepConfig ratio10 = base;
  ratio10.event_node_ratio = 1.0;
  Point("ratio=1.0", ratio10, 753);

  SweepConfig skew11 = base;
  skew11.rate_skew = 1.1;
  Point("skew=1.1", skew11, 754);

  SweepConfig skew20 = base;
  skew20.rate_skew = 2.0;
  Point("skew=2.0", skew20, 755);

  SweepConfig sel = base;
  sel.min_selectivity = 0.2;
  sel.max_selectivity = 0.21;
  Point("sel>=0.2", sel, 756);

  Point("large", base.Large(), 757);
  return muse::bench::FinishBench(argc, argv);
}
