// Ablation (DESIGN.md): what do the individual MuSE ingredients buy?
//  * full aMuSE            — arbitrary projections + multi-sink placements
//  * single-sink only      — arbitrary projections, enable_multi_sink=false
//  * no beneficial pruning — plan quality check for the Def. 13 pruning
//  * oOP                   — hierarchy projections, single sink (baseline)

#include "bench/bench_common.h"

namespace muse::bench {
namespace {

double Ratio(const WorkloadCatalogs& catalogs, const PlannerOptions& opts) {
  return PlanWorkloadAmuse(catalogs, opts).transmission_ratio;
}

void Run() {
  PrintTitle("Ablation: contribution of multi-sink placements and pruning");
  PrintHeader({"seed", "aMuSE", "single-sink", "no-pruning", "oOP"});
  SweepConfig cfg;
  for (uint64_t seed : {901, 902, 903, 904}) {
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = cfg.num_nodes;
    nopts.num_types = cfg.num_types;
    nopts.event_node_ratio = cfg.event_node_ratio;
    nopts.rate_skew = cfg.rate_skew;
    Network net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(cfg.num_types, cfg.min_selectivity,
                           cfg.max_selectivity, rng);
    QueryGenOptions qopts;
    qopts.num_queries = cfg.num_queries;
    qopts.avg_primitives = cfg.avg_primitives;
    qopts.num_types = cfg.num_types;
    std::vector<Query> workload = GenerateWorkload(qopts, model, rng);
    WorkloadCatalogs catalogs(workload, net);

    PlannerOptions full = BenchPlannerOptions(false);
    PlannerOptions no_ms = full;
    no_ms.enable_multi_sink = false;
    PlannerOptions no_prune = full;
    no_prune.prune_beneficial = false;

    PrintRow({std::to_string(seed), Fmt(Ratio(catalogs, full)),
              Fmt(Ratio(catalogs, no_ms)), Fmt(Ratio(catalogs, no_prune)),
              Fmt(PlanWorkloadOop(catalogs).transmission_ratio)});
  }
}

}  // namespace
}  // namespace muse::bench

int main(int argc, char** argv) {
  muse::bench::InitBench(argc, argv);
  muse::bench::Run();
  return muse::bench::FinishBench(argc, argv);
}
